#include "dist/coordinator.h"

#include <unistd.h>

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "dist/protocol.h"
#include "net/frame.h"
#include "obs/flight_recorder.h"
#include "obs/metric_names.h"
#include "obs/obs.h"

namespace mlsim::dist {

namespace {

double us_since(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t)
      .count();
}

/// Nonzero distributed trace id for one run: the fingerprint already hashes
/// trace + options + plan, mixed with the session so repeated runs of the
/// same work get distinct ids.
std::uint64_t derive_trace_id(std::uint64_t fingerprint,
                              std::uint64_t session) {
  std::uint64_t id = fingerprint ^ (session * 0x9e3779b97f4a7c15ull);
  return id == 0 ? 1 : id;
}

/// Nearest-rank percentile of the (unsorted) sample; < 0 when empty.
double percentile_of(std::vector<double> v, double pct) {
  if (v.empty()) return -1.0;
  const double frac = std::clamp(pct, 0.0, 100.0) / 100.0;
  const auto idx = static_cast<std::size_t>(
      frac * static_cast<double>(v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

/// Completions the speculation percentile needs before it can tell a
/// straggler from normal pace.
constexpr std::size_t kMinPaceSamples = 3;

/// Nonzero v4 rejoin token: splitmix64 of the run fingerprint. Derived, not
/// random, so a restarted coordinator resuming the same work issues the
/// identical token and pre-restart workers pass the rejoin check.
std::uint64_t derive_session_token(std::uint64_t fingerprint) {
  std::uint64_t z = fingerprint + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z == 0 ? 1 : z;
}

}  // namespace

DistCoordinator::DistCoordinator(net::TcpListener listener,
                                 CoordinatorOptions opts)
    : listener_(std::move(listener)),
      opts_(opts),
      // Resume implies a result cache: the replayed outcomes have to live
      // somewhere the dispatch pre-pass will find them.
      cache_(opts.resume && opts.result_cache_entries == 0
                 ? 1024
                 : opts.result_cache_entries) {
  check(listener_.valid(), "coordinator needs a bound listener");
  check(opts_.max_assign_attempts > 0, "need at least one assignment attempt");
  if (!opts_.journal_path.empty()) {
    if (opts_.resume) {
      lifecycle_ = "replaying";
      refresh_health(nullptr);
      resume_ = RunJournal::replay(opts_.journal_path, opts_.journal_strict);
    }
    journal_.open(opts_.journal_path);
  }
  lifecycle_ = "serving";
  refresh_health(nullptr);
}

DistCoordinator::~DistCoordinator() { shutdown_workers(); }

void DistCoordinator::shutdown_workers() {
  for (auto& w : workers_) {
    if (w->dead) continue;
    try {
      net::send_frame(w->conn, encode_shutdown());
    } catch (const IoError&) {
      // Already gone; nothing to drain.
    }
  }
  workers_.clear();
  refresh_health(nullptr);
}

std::size_t DistCoordinator::connected_workers() const {
  std::lock_guard lk(health_mu_);
  return workers_snapshot_;
}

CoordinatorStats DistCoordinator::stats() const {
  std::lock_guard lk(health_mu_);
  return stats_snapshot_;
}

void DistCoordinator::accept_joiners(const WelcomeFrames& welcome,
                                     RunState& rs) {
  // Drain the backlog: accept until the listener would block.
  for (;;) {
    auto conn = listener_.accept(0);
    if (!conn.has_value()) return;
    RejoinMsg rj;
    bool is_rejoin = false;
    try {
      if (!conn->readable(opts_.handshake_timeout_ms)) {
        continue;  // never said Hello; drop
      }
      std::string payload;
      if (!net::recv_frame(*conn, payload)) continue;
      std::uint32_t version = 0;
      if (peek_type(payload, conn->peer()) == MsgType::kRejoin) {
        rj = decode_rejoin(payload, conn->peer());
        version = rj.version;
        is_rejoin = true;
      } else {
        version = decode_hello(payload, conn->peer());
      }
      if (version < kMinProtocolVersion || version > kProtocolVersion) {
        ++stats_.workers_rejected;
        net::send_frame(
            *conn, encode_reject("protocol version " +
                                 std::to_string(version) +
                                 " unsupported (coordinator speaks " +
                                 std::to_string(kMinProtocolVersion) + ".." +
                                 std::to_string(kProtocolVersion) + ")"));
        continue;
      }
      net::send_frame(*conn, version >= 4 ? welcome.v4 : welcome.legacy);
      auto w = std::make_unique<Worker>();
      w->conn = std::move(*conn);
      w->last_heard = Clock::now();
      w->version = version;
      w->uid = next_worker_uid_++;
      workers_.push_back(std::move(w));
    } catch (const IoError&) {
      continue;  // died mid-handshake
    } catch (const CheckError&) {
      continue;  // spoke garbage instead of Hello
    }
    Worker& joined = *workers_.back();
    if (is_rejoin && session_token_ != 0 && rj.token == session_token_) {
      // Re-attach: the worker belonged to this run (the token is derived
      // from the run fingerprint, so it also survives a coordinator
      // restart). Its finished Result, if any, arrives under the fresh
      // session right after the Welcome; its unfinished assignment is
      // re-dispatched immediately instead of waiting for assign_pending.
      ++stats_.workers_rejoined;
      MLSIM_COUNTER_ADD(obs::names::kDistWorkersRejoined, 1);
      obs::flight::record(session_, obs::flight::Event::kWorkerRejoined,
                          rj.shard);
      if (rj.shard < rs.shards.size() &&
          rs.shards[rj.shard].state == ShardState::kPending &&
          rs.shards[rj.shard].attempts < opts_.max_assign_attempts &&
          send_assign(joined, rj.shard, rs)) {
        rs.shards[rj.shard].state = ShardState::kAssigned;
        rs.shards[rj.shard].owner = &joined;
      }
    } else {
      // A stale or missing token demotes the reconnect to a fresh join.
      ++stats_.workers_joined;
      MLSIM_COUNTER_ADD(obs::names::kDistWorkersJoined, 1);
    }
  }
}

void DistCoordinator::detach_worker_from_shard(Worker& w, RunState& rs) {
  if (!w.shard.has_value()) return;
  const std::size_t s = *w.shard;
  w.shard.reset();
  if (s >= rs.shards.size()) return;
  Shard& sh = rs.shards[s];
  if (sh.state != ShardState::kAssigned) return;
  if (sh.spec == &w) {
    // Losing the speculative copy costs nothing: the owner still has it.
    sh.spec = nullptr;
    return;
  }
  if (sh.owner != &w) return;  // stolen away earlier; w was a stale holder
  if (sh.spec != nullptr && !sh.spec->dead && !sh.spec->suspect) {
    // The duplicate is already computing it — promote instead of requeueing.
    sh.owner = sh.spec;
    sh.spec = nullptr;
    return;
  }
  sh.spec = nullptr;
  reassign(s, rs);
}

void DistCoordinator::drop_worker(Worker& w, RunState& rs) {
  if (w.dead) return;
  w.dead = true;
  w.conn.close();
  ++stats_.workers_lost;
  MLSIM_COUNTER_ADD(obs::names::kDistWorkersLost, 1);
  detach_worker_from_shard(w, rs);
}

void DistCoordinator::reassign(std::size_t shard_idx, RunState& rs) {
  rs.shards[shard_idx].state = ShardState::kPending;
  rs.shards[shard_idx].owner = nullptr;
  rs.shards[shard_idx].spec = nullptr;
  ++stats_.reassignments;
  MLSIM_COUNTER_ADD(obs::names::kDistReassignments, 1);
}

bool DistCoordinator::send_assign(Worker& w, std::size_t s, RunState& rs) {
  AssignMsg a;
  a.session = session_;
  a.shard = s;
  a.part_lo = rs.plan->shard_lo(s);
  a.part_hi = rs.plan->shard_hi(s);
  a.attempt = static_cast<std::uint32_t>(rs.shards[s].attempts);
  a.trace_id = trace_id_;
  a.parent_span = obs::current_parent_span();
  try {
    // v1 workers get byte-exact v1 payloads: their strict decoders treat
    // trailing bytes as corruption.
    net::send_frame(w.conn, encode_assign(a, w.version));
  } catch (const IoError&) {
    drop_worker(w, rs);
    return false;
  }
  if (journal_.enabled()) journal_.assign(session_, s, a.attempt);
  ++rs.shards[s].attempts;
  w.shard = s;
  w.assigned_at = Clock::now();
  w.last_heard = Clock::now();
  ++stats_.shards_dispatched;
  MLSIM_COUNTER_ADD(obs::names::kDistShardsDispatched, 1);
  return true;
}

void DistCoordinator::assign_pending(RunState& rs) {
  for (std::size_t s = 0; s < rs.shards.size(); ++s) {
    if (rs.shards[s].state != ShardState::kPending) continue;
    Worker* idle = nullptr;
    for (auto& w : workers_) {
      if (!w->dead && !w->suspect && !w->shard.has_value()) {
        idle = w.get();
        break;
      }
    }
    if (idle == nullptr) return;  // no capacity this tick
    check(rs.shards[s].attempts < opts_.max_assign_attempts,
          "shard " + std::to_string(s) + " exceeded its assignment budget (" +
              std::to_string(opts_.max_assign_attempts) + " attempts)");
    if (!send_assign(*idle, s, rs)) {
      --s;  // retry this shard against the remaining pool
      continue;
    }
    rs.shards[s].state = ShardState::kAssigned;
    rs.shards[s].owner = idle;
  }
}

double DistCoordinator::fleet_pace_us() const {
  double sum = 0.0;
  std::size_t cnt = 0;
  for (const auto& w : workers_) {
    if (w->dead || w->ewma_shard_us <= 0.0) continue;
    double us = w->ewma_shard_us;
    // A worker spending a fraction b of its wall time on shard work takes
    // ~1/b of its historical per-shard time right now.
    if (w->busy_ratio > 0.0) us /= std::clamp(w->busy_ratio, 0.1, 1.0);
    sum += us;
    ++cnt;
  }
  return cnt > 0 ? sum / static_cast<double>(cnt) : -1.0;
}

void DistCoordinator::rebalance(RunState& rs) {
  if (!opts_.steal && opts_.speculate_pct <= 0.0) return;
  // Idle capacity only exists once nothing is pending: assign_pending runs
  // first each tick, so any leftover idle worker here has no real work.
  std::vector<Worker*> idle;
  for (auto& w : workers_) {
    if (!w->dead && !w->suspect && !w->shard.has_value()) idle.push_back(w.get());
  }
  if (idle.empty()) return;
  for (const auto& sh : rs.shards) {
    if (sh.state == ShardState::kPending) return;
  }

  const double fleet_us = fleet_pace_us();
  const double spec_floor_us =
      (opts_.speculate_pct > 0.0 && rs.latencies_us.size() >= kMinPaceSamples)
          ? percentile_of(rs.latencies_us, opts_.speculate_pct)
          : -1.0;

  for (std::size_t s = 0; s < rs.shards.size() && !idle.empty(); ++s) {
    Shard& sh = rs.shards[s];
    if (sh.state != ShardState::kAssigned || sh.owner == nullptr) continue;
    if (sh.attempts >= opts_.max_assign_attempts) continue;  // budget spent
    const double age_us = us_since(sh.owner->assigned_at);
    if (opts_.steal && fleet_us > 0.0 &&
        age_us > opts_.steal_grace_factor * fleet_us) {
      // Rebalance to the idle worker. The old owner keeps computing (its
      // w.shard still points here) — whichever Result lands first wins.
      Worker* thief = idle.back();
      idle.pop_back();
      if (!send_assign(*thief, s, rs)) continue;
      sh.owner = thief;
      ++stats_.steals;
      MLSIM_COUNTER_ADD(obs::names::kClusterStealShards, 1);
      obs::flight::record(session_, obs::flight::Event::kShardStolen, s);
    } else if (spec_floor_us > 0.0 && sh.spec == nullptr &&
               age_us > spec_floor_us) {
      // Straggler by this run's own completed-latency distribution:
      // duplicate onto the idle worker, keep the owner racing.
      Worker* backup = idle.back();
      idle.pop_back();
      if (!send_assign(*backup, s, rs)) continue;
      sh.spec = backup;
      ++stats_.speculations;
      MLSIM_COUNTER_ADD(obs::names::kClusterSpeculativeDispatched, 1);
      obs::flight::record(session_, obs::flight::Event::kShardSpeculated, s);
    }
  }
}

void DistCoordinator::handle_frame(Worker& w, RunState& rs) {
  std::string payload;
  try {
    if (!net::recv_frame(w.conn, payload)) {
      drop_worker(w, rs);  // clean EOF: worker exited
      return;
    }
  } catch (const IoError&) {
    drop_worker(w, rs);  // reset, or a truncated/corrupt frame
    return;
  }
  w.last_heard = Clock::now();
  w.suspect = false;
  WorkerErrorMsg fatal;
  bool have_fatal = false;
  try {
    switch (peek_type(payload, w.conn.peer())) {
      case MsgType::kHeartbeat: {
        const HeartbeatMsg hb = decode_heartbeat(payload, w.conn.peer());
        ++stats_.heartbeats;
        MLSIM_COUNTER_ADD(obs::names::kDistHeartbeats, 1);
        // Version gate, not just a sign check: a pre-v2 worker can never
        // contribute to the fleet-mean busy gauge, even if a frame of its
        // happens to carry v2-looking trailing bytes.
        if (w.version >= 2 && hb.busy_ratio >= 0.0) {
          w.busy_ratio = std::min(1.0, hb.busy_ratio);
          update_busy_gauge();
        }
        if (obs::enabled()) {
          // Fold the worker's counter deltas into the cluster rollups.
          for (const RollupDelta& d : hb.rollups) {
            if (d.id < kNumRollupCounters) {
              obs::default_registry()
                  .counter(kRollupCounters[d.id].cluster)
                  .add(d.delta);
            }
          }
        }
        break;
      }
      case MsgType::kResult: {
        ResultDecoded d = decode_result(payload, w.conn.peer());
        const std::size_t s = d.header.shard;
        if (w.shard == s) w.shard.reset();
        if (d.header.session != session_ || s >= rs.shards.size() ||
            rs.shards[s].state == ShardState::kDone) {
          // Duplicate, or a late delivery for a shard already completed
          // elsewhere (possibly by its steal/speculation twin): outcomes are
          // deterministic, so the first accepted result is as good as any —
          // drop idempotently.
          ++stats_.duplicates_dropped;
          MLSIM_COUNTER_ADD(obs::names::kDistDuplicatesDropped, 1);
          break;
        }
        check(d.outcome.part_lo == rs.plan->shard_lo(s) &&
                  d.outcome.part_hi == rs.plan->shard_hi(s),
              "shard result range does not match the plan");
        if (rs.shards[s].spec == &w) {
          // The speculative duplicate beat the original owner.
          MLSIM_COUNTER_ADD(obs::names::kClusterSpeculativeWins, 1);
        }
        // Durability before effect: the result is journaled before the
        // shard is counted done, so a crash after this point re-serves it
        // from the journal instead of re-dispatching it.
        if (journal_.enabled()) journal_.result(session_, payload);
        rs.shards[s].outcome = std::move(d.outcome);
        rs.shards[s].state = ShardState::kDone;
        rs.shards[s].owner = nullptr;
        rs.shards[s].spec = nullptr;
        if (cache_.enabled()) {
          cache_.insert({rs.fingerprint, s, rs.plan->shard_lo(s),
                         rs.plan->shard_hi(s)},
                        rs.shards[s].outcome);
        }
        if (d.trace_id != 0 && !d.spans.empty() && obs::enabled()) {
          // Merge the worker's span buffer into the cross-process trace
          // under its stable uid (coordinator itself is pid 1).
          obs::add_remote_spans(1 + w.uid, d.trace_id, std::move(d.spans));
        }
        ++rs.done;
        ++w.completed;
        ++stats_.shards_completed;
        const double lat_us = us_since(w.assigned_at);
        w.ewma_shard_us = w.ewma_shard_us > 0.0
                              ? 0.7 * w.ewma_shard_us + 0.3 * lat_us
                              : lat_us;
        rs.latencies_us.push_back(lat_us);
        MLSIM_COUNTER_ADD(obs::names::kDistShardsCompleted, 1);
        MLSIM_HIST_RECORD(obs::names::kDistShardLatencyUs, lat_us);
        break;
      }
      case MsgType::kGoodbye: {
        (void)decode_goodbye(payload, w.conn.peer());
        // Planned departure: requeue (or hand to the speculative twin) right
        // now instead of burning the heartbeat timeout, and don't count the
        // worker as lost.
        ++stats_.workers_departed;
        MLSIM_COUNTER_ADD(obs::names::kDistWorkersDeparted, 1);
        detach_worker_from_shard(w, rs);
        w.dead = true;
        w.conn.close();
        break;
      }
      case MsgType::kWorkerError: {
        const WorkerErrorMsg m = decode_worker_error(payload, w.conn.peer());
        if (m.kind == 1) {
          // Deterministic content failure: rerunning elsewhere reproduces
          // it, so fail the run (outside this catch block).
          fatal = m;
          have_fatal = true;
          break;
        }
        // Worker-side transport trouble: requeue whatever it was running.
        detach_worker_from_shard(w, rs);
        break;
      }
      default:
        // A worker must not send Hello/Welcome/Assign/Shutdown mid-run.
        drop_worker(w, rs);
        break;
    }
  } catch (const CheckError&) {
    // Undecodable or plan-inconsistent content: treat like transport loss.
    drop_worker(w, rs);
    return;
  }
  if (have_fatal) {
    throw CheckError("worker " + w.conn.peer() + " failed shard " +
                     std::to_string(fatal.shard) +
                     " deterministically: " + fatal.what);
  }
}

void DistCoordinator::reap_dead_workers() {
  workers_.erase(
      std::remove_if(workers_.begin(), workers_.end(),
                     [](const std::unique_ptr<Worker>& w) { return w->dead; }),
      workers_.end());
}

core::ParallelSimResult DistCoordinator::run(
    const trace::EncodedTrace& trace, const core::ParallelSimOptions& opts) {
  core::ParallelSimResult res;
  const std::size_t n = trace.size();
  res.instructions = n;
  if (n == 0) return res;

  MLSIM_TRACE_SPAN("dist/run");
  ++session_;
  const core::ShardPlan plan = core::ShardPlan::make(n, opts);
  const std::uint64_t fp = core::run_fingerprint(trace, opts, plan.parts);
  session_token_ = derive_session_token(fp);
  if (obs::enabled()) {
    // One distributed trace per run: the id rides on every Assign, workers
    // record under it, and their Result span buffers merge back here.
    trace_id_ = derive_trace_id(fp, session_);
    obs::set_trace_context(trace_id_, 0);
  } else {
    trace_id_ = 0;
  }
  const RunConfig cfg = RunConfig::from_options(opts);

  RunState rs;
  rs.plan = &plan;
  rs.fingerprint = fp;
  rs.shards.resize(plan.num_shards);

  // One-shot resume feed: the journal's completed shards become cache
  // entries, which the pre-pass below serves like any other hit (so replay
  // hits count toward cluster.cache.hits and are never dispatched).
  if (resume_.has_value()) {
    if (resume_->fingerprint == fp) {
      for (auto& [s, outcome] : resume_->results) {
        if (s >= plan.num_shards) continue;
        if (outcome.part_lo != plan.shard_lo(s) ||
            outcome.part_hi != plan.shard_hi(s)) {
          continue;  // a different ShardPlan journaled this shard index
        }
        cache_.insert({fp, s, plan.shard_lo(s), plan.shard_hi(s)},
                      std::move(outcome));
        ++stats_.journal_replayed;
        obs::flight::record(session_, obs::flight::Event::kJournalReplayed, s);
      }
    }
    resume_.reset();
  }

  if (journal_.enabled()) {
    journal_.run_open(session_, fp, plan.num_shards, cfg);
  }

  // Serve whatever the result cache already holds: a hit completes the
  // shard without dispatching it. Identical repeated runs finish here.
  if (cache_.enabled()) {
    for (std::size_t s = 0; s < rs.shards.size(); ++s) {
      const ShardResultCache::Key key{fp, s, plan.shard_lo(s),
                                      plan.shard_hi(s)};
      if (const core::ShardOutcome* hit = cache_.lookup(key)) {
        rs.shards[s].outcome = *hit;
        rs.shards[s].state = ShardState::kDone;
        ++rs.done;
        obs::flight::record(session_, obs::flight::Event::kCacheHit, s);
        // Re-journal cache-served shards under this run-open so each
        // journal section is self-contained: a second crash+resume keeps
        // the shards the first resume inherited.
        if (journal_.enabled()) {
          journal_.result(
              session_,
              encode_result({session_, s, 0}, rs.shards[s].outcome));
        }
      }
    }
  }

  // A fully cache-served run skips the cluster entirely: encoding the
  // Welcome (two copies of the trace) and broadcasting it to every worker
  // would otherwise make a zero-dispatch re-run scale with the fleet size.
  // Workers keep their stale session state; the next dispatching run
  // re-welcomes them.
  WelcomeFrames welcome;
  if (rs.done < plan.num_shards) {
    welcome = WelcomeFrames{
        encode_welcome(session_, fp, cfg, trace, session_token_,
                       kProtocolVersion),
        encode_welcome(session_, fp, cfg, trace, 0, 3)};
    // Re-welcome workers that joined in a previous run: their session state
    // is stale until they see this run's config and trace.
    for (auto& w : workers_) {
      try {
        net::send_frame(w->conn,
                        w->version >= 4 ? welcome.v4 : welcome.legacy);
      } catch (const IoError&) {
        drop_worker(*w, rs);
      }
    }
    reap_dead_workers();
  }

  const auto started = Clock::now();
  const auto deadline =
      started + std::chrono::milliseconds(opts_.run_timeout_ms);
  // min_workers gates only the *initial* dispatch (don't race shards onto a
  // half-joined cluster). Once dispatch has begun, losing workers below the
  // floor must not stall the run — the survivors drain the queue.
  bool dispatching = false;
  while (rs.done < plan.num_shards) {
    if (opts.cancel != nullptr) opts.cancel->check();
    if (opts_.run_timeout_ms > 0 && Clock::now() > deadline) {
      throw IoError("distributed run timed out after " +
                    std::to_string(opts_.run_timeout_ms) + " ms with " +
                    std::to_string(rs.done) + "/" +
                    std::to_string(plan.num_shards) + " shards complete");
    }
    if (drain_requested_) {
      // Draining: no new admissions or dispatches; in-flight shards may
      // finish until the drain deadline, then the run closes regardless.
      bool inflight = false;
      for (const Shard& sh : rs.shards) {
        if (sh.state == ShardState::kAssigned) {
          inflight = true;
          break;
        }
      }
      if (!inflight || Clock::now() > drain_deadline_) finish_drain(rs);
    } else {
      if (workers_.size() >= opts_.min_workers) dispatching = true;
      if (dispatching) {
        assign_pending(rs);
        rebalance(rs);
      }
    }

    // Once draining, the wake fd leaves the poll set: the request is level
    // state, and a second signal never reaches the loop anyway (the handler
    // _exits directly).
    const bool has_wake = opts_.wake_fd >= 0 && !drain_requested_;
    std::vector<int> fds;
    fds.reserve(workers_.size() + 2);
    fds.push_back(listener_.fd());
    if (has_wake) fds.push_back(opts_.wake_fd);
    for (auto& w : workers_) fds.push_back(w->conn.fd());
    const std::vector<bool> ready = net::poll_readable(fds, opts_.poll_ms);
    const std::size_t base = has_wake ? 2 : 1;

    if (has_wake && ready[1] && !drain_requested_) {
      // One readable byte = drain request (net::SignalPipe writes it from
      // the SIGTERM/SIGINT handler). One bounded read — never a drain-to-
      // EAGAIN loop, because the fd is allowed to be a plain blocking pipe.
      char buf[64];
      [[maybe_unused]] const ssize_t n =
          ::read(opts_.wake_fd, buf, sizeof(buf));
      drain_requested_ = true;
      drain_deadline_ =
          Clock::now() + std::chrono::milliseconds(opts_.drain_timeout_ms);
      lifecycle_ = "draining";
      MLSIM_COUNTER_ADD(obs::names::kDistDrainRequests, 1);
      obs::flight::record(session_, obs::flight::Event::kDrainStarted,
                          rs.done);
    }
    if (ready[0] && !drain_requested_) accept_joiners(welcome, rs);
    // accept_joiners may have appended workers the poll never saw; only the
    // first fds.size()-base entries have a ready bit.
    for (std::size_t i = 0; i + base < fds.size(); ++i) {
      if (ready[i + base] && !workers_[i]->dead) {
        handle_frame(*workers_[i], rs);
      }
    }

    // Presume silent assigned workers dead: requeue their shards (or hand
    // them to their speculative twin), but keep the sockets open — a late
    // Result is still accepted (or dropped as a duplicate) if the worker
    // was merely slow.
    const auto now = Clock::now();
    for (auto& w : workers_) {
      if (w->dead || !w->shard.has_value()) continue;
      const auto silent_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              now - w->last_heard)
              .count();
      if (silent_ms > opts_.heartbeat_timeout_ms) {
        w->suspect = true;
        detach_worker_from_shard(*w, rs);
      }
    }
    reap_dead_workers();
    refresh_health(&rs);
  }

  core::ShardMerger merger(plan, opts.record_predictions,
                           opts.record_context_counts);
  for (const Shard& s : rs.shards) merger.add(s.outcome);
  res = merger.finish(opts, /*predictor_flops=*/0);
  if (journal_.enabled()) {
    journal_.run_close(session_, RunJournal::kStatusComplete);
  }
  if (obs::enabled()) {
    for (const auto& w : workers_) {
      MLSIM_HIST_RECORD(obs::names::kDistShardsPerWorker,
                        static_cast<double>(w->completed));
    }
  }
  refresh_health(&rs);
  return res;
}

void DistCoordinator::finish_drain(RunState& rs) {
  std::size_t abandoned = 0;
  for (const Shard& sh : rs.shards) {
    if (sh.state != ShardState::kDone) ++abandoned;
  }
  MLSIM_COUNTER_ADD(obs::names::kDistDrainShardsAbandoned,
                    static_cast<std::uint64_t>(abandoned));
  // Run-close with the drained status: the journal section stays valid for
  // `--resume`, which re-serves every result journaled above.
  if (journal_.enabled()) {
    journal_.run_close(session_, RunJournal::kStatusDrained);
  }
  refresh_health(&rs);
  // Shutdown, not abandonment: workers get the same Shutdown frame a
  // completed run would send, so they exit instead of burning their
  // reconnect budgets against a closed coordinator.
  shutdown_workers();
  throw DrainError("drain requested: stopped with " + std::to_string(rs.done) +
                   "/" + std::to_string(rs.shards.size()) +
                   " shards complete; progress journaled for --resume");
}

void DistCoordinator::update_busy_gauge() {
  // Mean busy fraction over live, reporting v2+ workers — one declared
  // gauge; per-worker ratios are in cluster_json. Pre-v2 workers cannot
  // report busy time, so they are excluded rather than averaged in as zero.
  double sum = 0.0;
  std::size_t cnt = 0;
  for (const auto& w : workers_) {
    if (w->dead || w->version < 2 || w->busy_ratio < 0.0) continue;
    sum += w->busy_ratio;
    ++cnt;
  }
  if (cnt > 0) {
    MLSIM_GAUGE_SET(obs::names::kClusterWorkerBusyRatio,
                    sum / static_cast<double>(cnt));
  }
}

void DistCoordinator::refresh_health(const RunState* rs) {
  std::ostringstream os;
  os << "{\"status\":\"" << (rs != nullptr ? "running" : "idle")
     << "\",\"lifecycle\":\"" << lifecycle_
     << "\",\"session\":" << session_
     << ",\"workers_connected\":" << workers_.size();
  if (rs != nullptr) {
    os << ",\"shards_done\":" << rs->done
       << ",\"shards_total\":" << rs->shards.size();
  }
  os << ",\"workers\":[";
  bool first = true;
  for (const auto& w : workers_) {
    os << (first ? "" : ",") << "{\"id\":" << w->uid
       << ",\"version\":" << w->version << ",\"completed\":" << w->completed
       << ",\"suspect\":" << (w->suspect ? "true" : "false")
       << ",\"busy_ratio\":";
    if (w->version >= 2 && w->busy_ratio >= 0.0) {
      os << w->busy_ratio;
    } else {
      os << "null";  // pre-v2 workers cannot report busy time
    }
    os << '}';
    first = false;
  }
  os << "],\"stats\":{\"workers_joined\":" << stats_.workers_joined
     << ",\"workers_lost\":" << stats_.workers_lost
     << ",\"workers_rejected\":" << stats_.workers_rejected
     << ",\"workers_departed\":" << stats_.workers_departed
     << ",\"shards_dispatched\":" << stats_.shards_dispatched
     << ",\"shards_completed\":" << stats_.shards_completed
     << ",\"reassignments\":" << stats_.reassignments
     << ",\"duplicates_dropped\":" << stats_.duplicates_dropped
     << ",\"heartbeats\":" << stats_.heartbeats
     << ",\"steals\":" << stats_.steals
     << ",\"speculations\":" << stats_.speculations
     << ",\"cache_hits\":" << cache_.hits()
     << ",\"cache_misses\":" << cache_.misses()
     << ",\"cache_evictions\":" << cache_.evictions()
     << ",\"cache_entries\":" << cache_.entries()
     << ",\"workers_rejoined\":" << stats_.workers_rejoined
     << ",\"journal_replayed\":" << stats_.journal_replayed << "}}";
  std::lock_guard lk(health_mu_);
  health_json_ = os.str();
  stats_snapshot_ = stats_;
  stats_snapshot_.cache_hits = cache_.hits();
  stats_snapshot_.cache_misses = cache_.misses();
  stats_snapshot_.cache_evictions = cache_.evictions();
  workers_snapshot_ = workers_.size();
}

std::string DistCoordinator::cluster_json(std::size_t last_errors) const {
  std::string doc;
  {
    std::lock_guard lk(health_mu_);
    doc = health_json_;
  }
  if (last_errors > 0 && !doc.empty() && doc.back() == '}') {
    doc.insert(doc.size() - 1, ",\"last_errors\":" +
                                   obs::flight::last_errors_json(last_errors));
  }
  return doc;
}

}  // namespace mlsim::dist
