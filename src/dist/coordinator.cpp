#include "dist/coordinator.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "dist/protocol.h"
#include "net/frame.h"
#include "obs/flight_recorder.h"
#include "obs/metric_names.h"
#include "obs/obs.h"

namespace mlsim::dist {

namespace {

double us_since(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t)
      .count();
}

/// Nonzero distributed trace id for one run: the fingerprint already hashes
/// trace + options + plan, mixed with the session so repeated runs of the
/// same work get distinct ids.
std::uint64_t derive_trace_id(std::uint64_t fingerprint,
                              std::uint64_t session) {
  std::uint64_t id = fingerprint ^ (session * 0x9e3779b97f4a7c15ull);
  return id == 0 ? 1 : id;
}

/// Nearest-rank percentile of the (unsorted) sample; < 0 when empty.
double percentile_of(std::vector<double> v, double pct) {
  if (v.empty()) return -1.0;
  const double frac = std::clamp(pct, 0.0, 100.0) / 100.0;
  const auto idx = static_cast<std::size_t>(
      frac * static_cast<double>(v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

/// Completions the speculation percentile needs before it can tell a
/// straggler from normal pace.
constexpr std::size_t kMinPaceSamples = 3;

}  // namespace

DistCoordinator::DistCoordinator(net::TcpListener listener,
                                 CoordinatorOptions opts)
    : listener_(std::move(listener)),
      opts_(opts),
      cache_(opts.result_cache_entries) {
  check(listener_.valid(), "coordinator needs a bound listener");
  check(opts_.max_assign_attempts > 0, "need at least one assignment attempt");
  refresh_health(nullptr);
}

DistCoordinator::~DistCoordinator() { shutdown_workers(); }

void DistCoordinator::shutdown_workers() {
  for (auto& w : workers_) {
    if (w->dead) continue;
    try {
      net::send_frame(w->conn, encode_shutdown());
    } catch (const IoError&) {
      // Already gone; nothing to drain.
    }
  }
  workers_.clear();
  refresh_health(nullptr);
}

std::size_t DistCoordinator::connected_workers() const {
  std::lock_guard lk(health_mu_);
  return workers_snapshot_;
}

CoordinatorStats DistCoordinator::stats() const {
  std::lock_guard lk(health_mu_);
  return stats_snapshot_;
}

void DistCoordinator::accept_joiners(const std::string& welcome) {
  // Drain the backlog: accept until the listener would block.
  for (;;) {
    auto conn = listener_.accept(0);
    if (!conn.has_value()) return;
    try {
      if (!conn->readable(opts_.handshake_timeout_ms)) {
        continue;  // never said Hello; drop
      }
      std::string payload;
      if (!net::recv_frame(*conn, payload)) continue;
      const auto version = decode_hello(payload, conn->peer());
      if (version < kMinProtocolVersion || version > kProtocolVersion) {
        ++stats_.workers_rejected;
        net::send_frame(
            *conn, encode_reject("protocol version " +
                                 std::to_string(version) +
                                 " unsupported (coordinator speaks " +
                                 std::to_string(kMinProtocolVersion) + ".." +
                                 std::to_string(kProtocolVersion) + ")"));
        continue;
      }
      net::send_frame(*conn, welcome);
      auto w = std::make_unique<Worker>();
      w->conn = std::move(*conn);
      w->last_heard = Clock::now();
      w->version = version;
      w->uid = next_worker_uid_++;
      workers_.push_back(std::move(w));
    } catch (const IoError&) {
      continue;  // died mid-handshake
    } catch (const CheckError&) {
      continue;  // spoke garbage instead of Hello
    }
    ++stats_.workers_joined;
    MLSIM_COUNTER_ADD(obs::names::kDistWorkersJoined, 1);
  }
}

void DistCoordinator::detach_worker_from_shard(Worker& w, RunState& rs) {
  if (!w.shard.has_value()) return;
  const std::size_t s = *w.shard;
  w.shard.reset();
  if (s >= rs.shards.size()) return;
  Shard& sh = rs.shards[s];
  if (sh.state != ShardState::kAssigned) return;
  if (sh.spec == &w) {
    // Losing the speculative copy costs nothing: the owner still has it.
    sh.spec = nullptr;
    return;
  }
  if (sh.owner != &w) return;  // stolen away earlier; w was a stale holder
  if (sh.spec != nullptr && !sh.spec->dead && !sh.spec->suspect) {
    // The duplicate is already computing it — promote instead of requeueing.
    sh.owner = sh.spec;
    sh.spec = nullptr;
    return;
  }
  sh.spec = nullptr;
  reassign(s, rs);
}

void DistCoordinator::drop_worker(Worker& w, RunState& rs) {
  if (w.dead) return;
  w.dead = true;
  w.conn.close();
  ++stats_.workers_lost;
  MLSIM_COUNTER_ADD(obs::names::kDistWorkersLost, 1);
  detach_worker_from_shard(w, rs);
}

void DistCoordinator::reassign(std::size_t shard_idx, RunState& rs) {
  rs.shards[shard_idx].state = ShardState::kPending;
  rs.shards[shard_idx].owner = nullptr;
  rs.shards[shard_idx].spec = nullptr;
  ++stats_.reassignments;
  MLSIM_COUNTER_ADD(obs::names::kDistReassignments, 1);
}

bool DistCoordinator::send_assign(Worker& w, std::size_t s, RunState& rs) {
  AssignMsg a;
  a.session = session_;
  a.shard = s;
  a.part_lo = rs.plan->shard_lo(s);
  a.part_hi = rs.plan->shard_hi(s);
  a.attempt = static_cast<std::uint32_t>(rs.shards[s].attempts);
  a.trace_id = trace_id_;
  a.parent_span = obs::current_parent_span();
  try {
    // v1 workers get byte-exact v1 payloads: their strict decoders treat
    // trailing bytes as corruption.
    net::send_frame(w.conn, encode_assign(a, w.version));
  } catch (const IoError&) {
    drop_worker(w, rs);
    return false;
  }
  ++rs.shards[s].attempts;
  w.shard = s;
  w.assigned_at = Clock::now();
  w.last_heard = Clock::now();
  ++stats_.shards_dispatched;
  MLSIM_COUNTER_ADD(obs::names::kDistShardsDispatched, 1);
  return true;
}

void DistCoordinator::assign_pending(RunState& rs) {
  for (std::size_t s = 0; s < rs.shards.size(); ++s) {
    if (rs.shards[s].state != ShardState::kPending) continue;
    Worker* idle = nullptr;
    for (auto& w : workers_) {
      if (!w->dead && !w->suspect && !w->shard.has_value()) {
        idle = w.get();
        break;
      }
    }
    if (idle == nullptr) return;  // no capacity this tick
    check(rs.shards[s].attempts < opts_.max_assign_attempts,
          "shard " + std::to_string(s) + " exceeded its assignment budget (" +
              std::to_string(opts_.max_assign_attempts) + " attempts)");
    if (!send_assign(*idle, s, rs)) {
      --s;  // retry this shard against the remaining pool
      continue;
    }
    rs.shards[s].state = ShardState::kAssigned;
    rs.shards[s].owner = idle;
  }
}

double DistCoordinator::fleet_pace_us() const {
  double sum = 0.0;
  std::size_t cnt = 0;
  for (const auto& w : workers_) {
    if (w->dead || w->ewma_shard_us <= 0.0) continue;
    double us = w->ewma_shard_us;
    // A worker spending a fraction b of its wall time on shard work takes
    // ~1/b of its historical per-shard time right now.
    if (w->busy_ratio > 0.0) us /= std::clamp(w->busy_ratio, 0.1, 1.0);
    sum += us;
    ++cnt;
  }
  return cnt > 0 ? sum / static_cast<double>(cnt) : -1.0;
}

void DistCoordinator::rebalance(RunState& rs) {
  if (!opts_.steal && opts_.speculate_pct <= 0.0) return;
  // Idle capacity only exists once nothing is pending: assign_pending runs
  // first each tick, so any leftover idle worker here has no real work.
  std::vector<Worker*> idle;
  for (auto& w : workers_) {
    if (!w->dead && !w->suspect && !w->shard.has_value()) idle.push_back(w.get());
  }
  if (idle.empty()) return;
  for (const auto& sh : rs.shards) {
    if (sh.state == ShardState::kPending) return;
  }

  const double fleet_us = fleet_pace_us();
  const double spec_floor_us =
      (opts_.speculate_pct > 0.0 && rs.latencies_us.size() >= kMinPaceSamples)
          ? percentile_of(rs.latencies_us, opts_.speculate_pct)
          : -1.0;

  for (std::size_t s = 0; s < rs.shards.size() && !idle.empty(); ++s) {
    Shard& sh = rs.shards[s];
    if (sh.state != ShardState::kAssigned || sh.owner == nullptr) continue;
    if (sh.attempts >= opts_.max_assign_attempts) continue;  // budget spent
    const double age_us = us_since(sh.owner->assigned_at);
    if (opts_.steal && fleet_us > 0.0 &&
        age_us > opts_.steal_grace_factor * fleet_us) {
      // Rebalance to the idle worker. The old owner keeps computing (its
      // w.shard still points here) — whichever Result lands first wins.
      Worker* thief = idle.back();
      idle.pop_back();
      if (!send_assign(*thief, s, rs)) continue;
      sh.owner = thief;
      ++stats_.steals;
      MLSIM_COUNTER_ADD(obs::names::kClusterStealShards, 1);
      obs::flight::record(session_, obs::flight::Event::kShardStolen, s);
    } else if (spec_floor_us > 0.0 && sh.spec == nullptr &&
               age_us > spec_floor_us) {
      // Straggler by this run's own completed-latency distribution:
      // duplicate onto the idle worker, keep the owner racing.
      Worker* backup = idle.back();
      idle.pop_back();
      if (!send_assign(*backup, s, rs)) continue;
      sh.spec = backup;
      ++stats_.speculations;
      MLSIM_COUNTER_ADD(obs::names::kClusterSpeculativeDispatched, 1);
      obs::flight::record(session_, obs::flight::Event::kShardSpeculated, s);
    }
  }
}

void DistCoordinator::handle_frame(Worker& w, RunState& rs) {
  std::string payload;
  try {
    if (!net::recv_frame(w.conn, payload)) {
      drop_worker(w, rs);  // clean EOF: worker exited
      return;
    }
  } catch (const IoError&) {
    drop_worker(w, rs);  // reset, or a truncated/corrupt frame
    return;
  }
  w.last_heard = Clock::now();
  w.suspect = false;
  WorkerErrorMsg fatal;
  bool have_fatal = false;
  try {
    switch (peek_type(payload, w.conn.peer())) {
      case MsgType::kHeartbeat: {
        const HeartbeatMsg hb = decode_heartbeat(payload, w.conn.peer());
        ++stats_.heartbeats;
        MLSIM_COUNTER_ADD(obs::names::kDistHeartbeats, 1);
        // Version gate, not just a sign check: a pre-v2 worker can never
        // contribute to the fleet-mean busy gauge, even if a frame of its
        // happens to carry v2-looking trailing bytes.
        if (w.version >= 2 && hb.busy_ratio >= 0.0) {
          w.busy_ratio = std::min(1.0, hb.busy_ratio);
          update_busy_gauge();
        }
        if (obs::enabled()) {
          // Fold the worker's counter deltas into the cluster rollups.
          for (const RollupDelta& d : hb.rollups) {
            if (d.id < kNumRollupCounters) {
              obs::default_registry()
                  .counter(kRollupCounters[d.id].cluster)
                  .add(d.delta);
            }
          }
        }
        break;
      }
      case MsgType::kResult: {
        ResultDecoded d = decode_result(payload, w.conn.peer());
        const std::size_t s = d.header.shard;
        if (w.shard == s) w.shard.reset();
        if (d.header.session != session_ || s >= rs.shards.size() ||
            rs.shards[s].state == ShardState::kDone) {
          // Duplicate, or a late delivery for a shard already completed
          // elsewhere (possibly by its steal/speculation twin): outcomes are
          // deterministic, so the first accepted result is as good as any —
          // drop idempotently.
          ++stats_.duplicates_dropped;
          MLSIM_COUNTER_ADD(obs::names::kDistDuplicatesDropped, 1);
          break;
        }
        check(d.outcome.part_lo == rs.plan->shard_lo(s) &&
                  d.outcome.part_hi == rs.plan->shard_hi(s),
              "shard result range does not match the plan");
        if (rs.shards[s].spec == &w) {
          // The speculative duplicate beat the original owner.
          MLSIM_COUNTER_ADD(obs::names::kClusterSpeculativeWins, 1);
        }
        rs.shards[s].outcome = std::move(d.outcome);
        rs.shards[s].state = ShardState::kDone;
        rs.shards[s].owner = nullptr;
        rs.shards[s].spec = nullptr;
        if (cache_.enabled()) {
          cache_.insert({rs.fingerprint, s, rs.plan->shard_lo(s),
                         rs.plan->shard_hi(s)},
                        rs.shards[s].outcome);
        }
        if (d.trace_id != 0 && !d.spans.empty() && obs::enabled()) {
          // Merge the worker's span buffer into the cross-process trace
          // under its stable uid (coordinator itself is pid 1).
          obs::add_remote_spans(1 + w.uid, d.trace_id, std::move(d.spans));
        }
        ++rs.done;
        ++w.completed;
        ++stats_.shards_completed;
        const double lat_us = us_since(w.assigned_at);
        w.ewma_shard_us = w.ewma_shard_us > 0.0
                              ? 0.7 * w.ewma_shard_us + 0.3 * lat_us
                              : lat_us;
        rs.latencies_us.push_back(lat_us);
        MLSIM_COUNTER_ADD(obs::names::kDistShardsCompleted, 1);
        MLSIM_HIST_RECORD(obs::names::kDistShardLatencyUs, lat_us);
        break;
      }
      case MsgType::kGoodbye: {
        (void)decode_goodbye(payload, w.conn.peer());
        // Planned departure: requeue (or hand to the speculative twin) right
        // now instead of burning the heartbeat timeout, and don't count the
        // worker as lost.
        ++stats_.workers_departed;
        MLSIM_COUNTER_ADD(obs::names::kDistWorkersDeparted, 1);
        detach_worker_from_shard(w, rs);
        w.dead = true;
        w.conn.close();
        break;
      }
      case MsgType::kWorkerError: {
        const WorkerErrorMsg m = decode_worker_error(payload, w.conn.peer());
        if (m.kind == 1) {
          // Deterministic content failure: rerunning elsewhere reproduces
          // it, so fail the run (outside this catch block).
          fatal = m;
          have_fatal = true;
          break;
        }
        // Worker-side transport trouble: requeue whatever it was running.
        detach_worker_from_shard(w, rs);
        break;
      }
      default:
        // A worker must not send Hello/Welcome/Assign/Shutdown mid-run.
        drop_worker(w, rs);
        break;
    }
  } catch (const CheckError&) {
    // Undecodable or plan-inconsistent content: treat like transport loss.
    drop_worker(w, rs);
    return;
  }
  if (have_fatal) {
    throw CheckError("worker " + w.conn.peer() + " failed shard " +
                     std::to_string(fatal.shard) +
                     " deterministically: " + fatal.what);
  }
}

void DistCoordinator::reap_dead_workers() {
  workers_.erase(
      std::remove_if(workers_.begin(), workers_.end(),
                     [](const std::unique_ptr<Worker>& w) { return w->dead; }),
      workers_.end());
}

core::ParallelSimResult DistCoordinator::run(
    const trace::EncodedTrace& trace, const core::ParallelSimOptions& opts) {
  core::ParallelSimResult res;
  const std::size_t n = trace.size();
  res.instructions = n;
  if (n == 0) return res;

  MLSIM_TRACE_SPAN("dist/run");
  ++session_;
  const core::ShardPlan plan = core::ShardPlan::make(n, opts);
  const std::uint64_t fp = core::run_fingerprint(trace, opts, plan.parts);
  if (obs::enabled()) {
    // One distributed trace per run: the id rides on every Assign, workers
    // record under it, and their Result span buffers merge back here.
    trace_id_ = derive_trace_id(fp, session_);
    obs::set_trace_context(trace_id_, 0);
  } else {
    trace_id_ = 0;
  }
  const std::string welcome =
      encode_welcome(session_, fp, RunConfig::from_options(opts), trace);

  RunState rs;
  rs.plan = &plan;
  rs.fingerprint = fp;
  rs.shards.resize(plan.num_shards);

  // Serve whatever the result cache already holds: a hit completes the
  // shard without dispatching it. Identical repeated runs finish here.
  if (cache_.enabled()) {
    for (std::size_t s = 0; s < rs.shards.size(); ++s) {
      const ShardResultCache::Key key{fp, s, plan.shard_lo(s),
                                      plan.shard_hi(s)};
      if (const core::ShardOutcome* hit = cache_.lookup(key)) {
        rs.shards[s].outcome = *hit;
        rs.shards[s].state = ShardState::kDone;
        ++rs.done;
        obs::flight::record(session_, obs::flight::Event::kCacheHit, s);
      }
    }
  }

  // Re-welcome workers that joined in a previous run: their session state
  // is stale until they see this run's config and trace.
  for (auto& w : workers_) {
    try {
      net::send_frame(w->conn, welcome);
    } catch (const IoError&) {
      drop_worker(*w, rs);
    }
  }
  reap_dead_workers();

  const auto started = Clock::now();
  const auto deadline =
      started + std::chrono::milliseconds(opts_.run_timeout_ms);
  // min_workers gates only the *initial* dispatch (don't race shards onto a
  // half-joined cluster). Once dispatch has begun, losing workers below the
  // floor must not stall the run — the survivors drain the queue.
  bool dispatching = false;
  while (rs.done < plan.num_shards) {
    if (opts.cancel != nullptr) opts.cancel->check();
    if (opts_.run_timeout_ms > 0 && Clock::now() > deadline) {
      throw IoError("distributed run timed out after " +
                    std::to_string(opts_.run_timeout_ms) + " ms with " +
                    std::to_string(rs.done) + "/" +
                    std::to_string(plan.num_shards) + " shards complete");
    }
    if (workers_.size() >= opts_.min_workers) dispatching = true;
    if (dispatching) {
      assign_pending(rs);
      rebalance(rs);
    }

    std::vector<int> fds;
    fds.reserve(workers_.size() + 1);
    fds.push_back(listener_.fd());
    for (auto& w : workers_) fds.push_back(w->conn.fd());
    const std::vector<bool> ready = net::poll_readable(fds, opts_.poll_ms);

    if (ready[0]) accept_joiners(welcome);
    // accept_joiners may have appended workers the poll never saw; only the
    // first fds.size()-1 entries have a ready bit.
    for (std::size_t i = 0; i + 1 < fds.size(); ++i) {
      if (ready[i + 1] && !workers_[i]->dead) {
        handle_frame(*workers_[i], rs);
      }
    }

    // Presume silent assigned workers dead: requeue their shards (or hand
    // them to their speculative twin), but keep the sockets open — a late
    // Result is still accepted (or dropped as a duplicate) if the worker
    // was merely slow.
    const auto now = Clock::now();
    for (auto& w : workers_) {
      if (w->dead || !w->shard.has_value()) continue;
      const auto silent_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              now - w->last_heard)
              .count();
      if (silent_ms > opts_.heartbeat_timeout_ms) {
        w->suspect = true;
        detach_worker_from_shard(*w, rs);
      }
    }
    reap_dead_workers();
    refresh_health(&rs);
  }

  core::ShardMerger merger(plan, opts.record_predictions,
                           opts.record_context_counts);
  for (const Shard& s : rs.shards) merger.add(s.outcome);
  res = merger.finish(opts, /*predictor_flops=*/0);
  if (obs::enabled()) {
    for (const auto& w : workers_) {
      MLSIM_HIST_RECORD(obs::names::kDistShardsPerWorker,
                        static_cast<double>(w->completed));
    }
  }
  refresh_health(&rs);
  return res;
}

void DistCoordinator::update_busy_gauge() {
  // Mean busy fraction over live, reporting v2+ workers — one declared
  // gauge; per-worker ratios are in cluster_json. Pre-v2 workers cannot
  // report busy time, so they are excluded rather than averaged in as zero.
  double sum = 0.0;
  std::size_t cnt = 0;
  for (const auto& w : workers_) {
    if (w->dead || w->version < 2 || w->busy_ratio < 0.0) continue;
    sum += w->busy_ratio;
    ++cnt;
  }
  if (cnt > 0) {
    MLSIM_GAUGE_SET(obs::names::kClusterWorkerBusyRatio,
                    sum / static_cast<double>(cnt));
  }
}

void DistCoordinator::refresh_health(const RunState* rs) {
  std::ostringstream os;
  os << "{\"status\":\"" << (rs != nullptr ? "running" : "idle")
     << "\",\"session\":" << session_
     << ",\"workers_connected\":" << workers_.size();
  if (rs != nullptr) {
    os << ",\"shards_done\":" << rs->done
       << ",\"shards_total\":" << rs->shards.size();
  }
  os << ",\"workers\":[";
  bool first = true;
  for (const auto& w : workers_) {
    os << (first ? "" : ",") << "{\"id\":" << w->uid
       << ",\"version\":" << w->version << ",\"completed\":" << w->completed
       << ",\"suspect\":" << (w->suspect ? "true" : "false")
       << ",\"busy_ratio\":";
    if (w->version >= 2 && w->busy_ratio >= 0.0) {
      os << w->busy_ratio;
    } else {
      os << "null";  // pre-v2 workers cannot report busy time
    }
    os << '}';
    first = false;
  }
  os << "],\"stats\":{\"workers_joined\":" << stats_.workers_joined
     << ",\"workers_lost\":" << stats_.workers_lost
     << ",\"workers_rejected\":" << stats_.workers_rejected
     << ",\"workers_departed\":" << stats_.workers_departed
     << ",\"shards_dispatched\":" << stats_.shards_dispatched
     << ",\"shards_completed\":" << stats_.shards_completed
     << ",\"reassignments\":" << stats_.reassignments
     << ",\"duplicates_dropped\":" << stats_.duplicates_dropped
     << ",\"heartbeats\":" << stats_.heartbeats
     << ",\"steals\":" << stats_.steals
     << ",\"speculations\":" << stats_.speculations
     << ",\"cache_hits\":" << cache_.hits()
     << ",\"cache_misses\":" << cache_.misses()
     << ",\"cache_evictions\":" << cache_.evictions()
     << ",\"cache_entries\":" << cache_.entries() << "}}";
  std::lock_guard lk(health_mu_);
  health_json_ = os.str();
  stats_snapshot_ = stats_;
  stats_snapshot_.cache_hits = cache_.hits();
  stats_snapshot_.cache_misses = cache_.misses();
  stats_snapshot_.cache_evictions = cache_.evictions();
  workers_snapshot_ = workers_.size();
}

std::string DistCoordinator::cluster_json(std::size_t last_errors) const {
  std::string doc;
  {
    std::lock_guard lk(health_mu_);
    doc = health_json_;
  }
  if (last_errors > 0 && !doc.empty() && doc.back() == '}') {
    doc.insert(doc.size() - 1, ",\"last_errors\":" +
                                   obs::flight::last_errors_json(last_errors));
  }
  return doc;
}

}  // namespace mlsim::dist
