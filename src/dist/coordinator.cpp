#include "dist/coordinator.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "dist/protocol.h"
#include "net/frame.h"
#include "obs/flight_recorder.h"
#include "obs/metric_names.h"
#include "obs/obs.h"

namespace mlsim::dist {

namespace {

double us_since(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t)
      .count();
}

/// Nonzero distributed trace id for one run: the fingerprint already hashes
/// trace + options + plan, mixed with the session so repeated runs of the
/// same work get distinct ids.
std::uint64_t derive_trace_id(std::uint64_t fingerprint,
                              std::uint64_t session) {
  std::uint64_t id = fingerprint ^ (session * 0x9e3779b97f4a7c15ull);
  return id == 0 ? 1 : id;
}

}  // namespace

DistCoordinator::DistCoordinator(net::TcpListener listener,
                                 CoordinatorOptions opts)
    : listener_(std::move(listener)), opts_(opts) {
  check(listener_.valid(), "coordinator needs a bound listener");
  check(opts_.max_assign_attempts > 0, "need at least one assignment attempt");
}

DistCoordinator::~DistCoordinator() { shutdown_workers(); }

void DistCoordinator::shutdown_workers() {
  for (auto& w : workers_) {
    if (w->dead) continue;
    try {
      net::send_frame(w->conn, encode_shutdown());
    } catch (const IoError&) {
      // Already gone; nothing to drain.
    }
  }
  workers_.clear();
}

void DistCoordinator::accept_joiners(const std::string& welcome) {
  // Drain the backlog: accept until the listener would block.
  for (;;) {
    auto conn = listener_.accept(0);
    if (!conn.has_value()) return;
    try {
      if (!conn->readable(opts_.handshake_timeout_ms)) {
        continue;  // never said Hello; drop
      }
      std::string payload;
      if (!net::recv_frame(*conn, payload)) continue;
      const auto version = decode_hello(payload, conn->peer());
      if (version < kMinProtocolVersion || version > kProtocolVersion) {
        ++stats_.workers_rejected;
        net::send_frame(
            *conn, encode_reject("protocol version " +
                                 std::to_string(version) +
                                 " unsupported (coordinator speaks " +
                                 std::to_string(kMinProtocolVersion) + ".." +
                                 std::to_string(kProtocolVersion) + ")"));
        continue;
      }
      net::send_frame(*conn, welcome);
      auto w = std::make_unique<Worker>();
      w->conn = std::move(*conn);
      w->last_heard = Clock::now();
      w->version = version;
      w->uid = next_worker_uid_++;
      workers_.push_back(std::move(w));
    } catch (const IoError&) {
      continue;  // died mid-handshake
    } catch (const CheckError&) {
      continue;  // spoke garbage instead of Hello
    }
    ++stats_.workers_joined;
    MLSIM_COUNTER_ADD(obs::names::kDistWorkersJoined, 1);
  }
}

void DistCoordinator::drop_worker(Worker& w, RunState& rs) {
  if (w.dead) return;
  w.dead = true;
  w.conn.close();
  ++stats_.workers_lost;
  MLSIM_COUNTER_ADD(obs::names::kDistWorkersLost, 1);
  if (w.shard.has_value()) {
    const std::size_t s = *w.shard;
    w.shard.reset();
    if (rs.shards[s].state == ShardState::kAssigned &&
        rs.shards[s].owner == &w) {
      reassign(s, rs);
    }
  }
}

void DistCoordinator::reassign(std::size_t shard_idx, RunState& rs) {
  rs.shards[shard_idx].state = ShardState::kPending;
  rs.shards[shard_idx].owner = nullptr;
  ++stats_.reassignments;
  MLSIM_COUNTER_ADD(obs::names::kDistReassignments, 1);
}

void DistCoordinator::assign_pending(RunState& rs) {
  for (std::size_t s = 0; s < rs.shards.size(); ++s) {
    if (rs.shards[s].state != ShardState::kPending) continue;
    Worker* idle = nullptr;
    for (auto& w : workers_) {
      if (!w->dead && !w->suspect && !w->shard.has_value()) {
        idle = w.get();
        break;
      }
    }
    if (idle == nullptr) return;  // no capacity this tick
    check(rs.shards[s].attempts < opts_.max_assign_attempts,
          "shard " + std::to_string(s) + " exceeded its assignment budget (" +
              std::to_string(opts_.max_assign_attempts) + " attempts)");
    AssignMsg a;
    a.session = session_;
    a.shard = s;
    a.part_lo = rs.plan->shard_lo(s);
    a.part_hi = rs.plan->shard_hi(s);
    a.attempt = static_cast<std::uint32_t>(rs.shards[s].attempts);
    a.trace_id = trace_id_;
    a.parent_span = obs::current_parent_span();
    try {
      // v1 workers get byte-exact v1 payloads: their strict decoders treat
      // trailing bytes as corruption.
      net::send_frame(idle->conn, encode_assign(a, idle->version));
    } catch (const IoError&) {
      drop_worker(*idle, rs);
      --s;  // retry this shard against the remaining pool
      continue;
    }
    ++rs.shards[s].attempts;
    rs.shards[s].state = ShardState::kAssigned;
    rs.shards[s].owner = idle;
    idle->shard = s;
    idle->assigned_at = Clock::now();
    idle->last_heard = Clock::now();
    ++stats_.shards_dispatched;
    MLSIM_COUNTER_ADD(obs::names::kDistShardsDispatched, 1);
  }
}

void DistCoordinator::handle_frame(Worker& w, RunState& rs) {
  std::string payload;
  try {
    if (!net::recv_frame(w.conn, payload)) {
      drop_worker(w, rs);  // clean EOF: worker exited
      return;
    }
  } catch (const IoError&) {
    drop_worker(w, rs);  // reset, or a truncated/corrupt frame
    return;
  }
  w.last_heard = Clock::now();
  w.suspect = false;
  WorkerErrorMsg fatal;
  bool have_fatal = false;
  try {
    switch (peek_type(payload, w.conn.peer())) {
      case MsgType::kHeartbeat: {
        const HeartbeatMsg hb = decode_heartbeat(payload, w.conn.peer());
        ++stats_.heartbeats;
        MLSIM_COUNTER_ADD(obs::names::kDistHeartbeats, 1);
        if (hb.busy_ratio >= 0.0) {
          w.busy_ratio = std::min(1.0, hb.busy_ratio);
          update_busy_gauge();
        }
        if (obs::enabled()) {
          // Fold the worker's counter deltas into the cluster rollups.
          for (const RollupDelta& d : hb.rollups) {
            if (d.id < kNumRollupCounters) {
              obs::default_registry()
                  .counter(kRollupCounters[d.id].cluster)
                  .add(d.delta);
            }
          }
        }
        break;
      }
      case MsgType::kResult: {
        ResultDecoded d = decode_result(payload, w.conn.peer());
        const std::size_t s = d.header.shard;
        if (w.shard == s) w.shard.reset();
        if (d.header.session != session_ || s >= rs.shards.size() ||
            rs.shards[s].state == ShardState::kDone) {
          // Duplicate, or a late delivery for a shard already completed
          // elsewhere: outcomes are deterministic, so the first accepted
          // result is as good as any — drop idempotently.
          ++stats_.duplicates_dropped;
          MLSIM_COUNTER_ADD(obs::names::kDistDuplicatesDropped, 1);
          break;
        }
        check(d.outcome.part_lo == rs.plan->shard_lo(s) &&
                  d.outcome.part_hi == rs.plan->shard_hi(s),
              "shard result range does not match the plan");
        rs.shards[s].outcome = std::move(d.outcome);
        rs.shards[s].state = ShardState::kDone;
        rs.shards[s].owner = nullptr;
        if (d.trace_id != 0 && !d.spans.empty() && obs::enabled()) {
          // Merge the worker's span buffer into the cross-process trace
          // under its stable uid (coordinator itself is pid 1).
          obs::add_remote_spans(1 + w.uid, d.trace_id, std::move(d.spans));
        }
        ++rs.done;
        ++w.completed;
        ++stats_.shards_completed;
        MLSIM_COUNTER_ADD(obs::names::kDistShardsCompleted, 1);
        MLSIM_HIST_RECORD(obs::names::kDistShardLatencyUs,
                          us_since(w.assigned_at));
        break;
      }
      case MsgType::kWorkerError: {
        const WorkerErrorMsg m = decode_worker_error(payload, w.conn.peer());
        if (m.kind == 1) {
          // Deterministic content failure: rerunning elsewhere reproduces
          // it, so fail the run (outside this catch block).
          fatal = m;
          have_fatal = true;
          break;
        }
        // Worker-side transport trouble: requeue whatever it was running.
        if (w.shard.has_value()) {
          const std::size_t s = *w.shard;
          w.shard.reset();
          if (rs.shards[s].state == ShardState::kAssigned &&
              rs.shards[s].owner == &w) {
            reassign(s, rs);
          }
        }
        break;
      }
      default:
        // A worker must not send Hello/Welcome/Assign/Shutdown mid-run.
        drop_worker(w, rs);
        break;
    }
  } catch (const CheckError&) {
    // Undecodable or plan-inconsistent content: treat like transport loss.
    drop_worker(w, rs);
    return;
  }
  if (have_fatal) {
    throw CheckError("worker " + w.conn.peer() + " failed shard " +
                     std::to_string(fatal.shard) +
                     " deterministically: " + fatal.what);
  }
}

void DistCoordinator::reap_dead_workers() {
  workers_.erase(
      std::remove_if(workers_.begin(), workers_.end(),
                     [](const std::unique_ptr<Worker>& w) { return w->dead; }),
      workers_.end());
}

core::ParallelSimResult DistCoordinator::run(
    const trace::EncodedTrace& trace, const core::ParallelSimOptions& opts) {
  core::ParallelSimResult res;
  const std::size_t n = trace.size();
  res.instructions = n;
  if (n == 0) return res;

  MLSIM_TRACE_SPAN("dist/run");
  ++session_;
  const core::ShardPlan plan = core::ShardPlan::make(n, opts);
  const std::uint64_t fp = core::run_fingerprint(trace, opts, plan.parts);
  if (obs::enabled()) {
    // One distributed trace per run: the id rides on every Assign, workers
    // record under it, and their Result span buffers merge back here.
    trace_id_ = derive_trace_id(fp, session_);
    obs::set_trace_context(trace_id_, 0);
  } else {
    trace_id_ = 0;
  }
  const std::string welcome =
      encode_welcome(session_, fp, RunConfig::from_options(opts), trace);

  RunState rs;
  rs.plan = &plan;
  rs.shards.resize(plan.num_shards);

  // Re-welcome workers that joined in a previous run: their session state
  // is stale until they see this run's config and trace.
  for (auto& w : workers_) {
    try {
      net::send_frame(w->conn, welcome);
    } catch (const IoError&) {
      drop_worker(*w, rs);
    }
  }
  reap_dead_workers();

  const auto started = Clock::now();
  const auto deadline =
      started + std::chrono::milliseconds(opts_.run_timeout_ms);
  // min_workers gates only the *initial* dispatch (don't race shards onto a
  // half-joined cluster). Once dispatch has begun, losing workers below the
  // floor must not stall the run — the survivors drain the queue.
  bool dispatching = false;
  while (rs.done < plan.num_shards) {
    if (opts.cancel != nullptr) opts.cancel->check();
    if (opts_.run_timeout_ms > 0 && Clock::now() > deadline) {
      throw IoError("distributed run timed out after " +
                    std::to_string(opts_.run_timeout_ms) + " ms with " +
                    std::to_string(rs.done) + "/" +
                    std::to_string(plan.num_shards) + " shards complete");
    }
    if (workers_.size() >= opts_.min_workers) dispatching = true;
    if (dispatching) assign_pending(rs);

    std::vector<int> fds;
    fds.reserve(workers_.size() + 1);
    fds.push_back(listener_.fd());
    for (auto& w : workers_) fds.push_back(w->conn.fd());
    const std::vector<bool> ready = net::poll_readable(fds, opts_.poll_ms);

    if (ready[0]) accept_joiners(welcome);
    // accept_joiners may have appended workers the poll never saw; only the
    // first fds.size()-1 entries have a ready bit.
    for (std::size_t i = 0; i + 1 < fds.size(); ++i) {
      if (ready[i + 1] && !workers_[i]->dead) {
        handle_frame(*workers_[i], rs);
      }
    }

    // Presume silent assigned workers dead: requeue their shards, but keep
    // the sockets open — a late Result is still accepted (or dropped as a
    // duplicate) if the worker was merely slow.
    const auto now = Clock::now();
    for (auto& w : workers_) {
      if (w->dead || !w->shard.has_value()) continue;
      const auto silent_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              now - w->last_heard)
              .count();
      if (silent_ms > opts_.heartbeat_timeout_ms) {
        const std::size_t s = *w->shard;
        w->shard.reset();
        w->suspect = true;
        if (rs.shards[s].state == ShardState::kAssigned &&
            rs.shards[s].owner == w.get()) {
          reassign(s, rs);
        }
      }
    }
    reap_dead_workers();
    refresh_health(&rs);
  }

  core::ShardMerger merger(plan, opts.record_predictions,
                           opts.record_context_counts);
  for (const Shard& s : rs.shards) merger.add(s.outcome);
  res = merger.finish(opts, /*predictor_flops=*/0);
  if (obs::enabled()) {
    for (const auto& w : workers_) {
      MLSIM_HIST_RECORD(obs::names::kDistShardsPerWorker,
                        static_cast<double>(w->completed));
    }
  }
  refresh_health(&rs);
  return res;
}

void DistCoordinator::update_busy_gauge() {
  // Mean busy fraction over live, reporting workers — one declared gauge;
  // per-worker ratios are in cluster_json.
  double sum = 0.0;
  std::size_t cnt = 0;
  for (const auto& w : workers_) {
    if (w->dead || w->busy_ratio < 0.0) continue;
    sum += w->busy_ratio;
    ++cnt;
  }
  if (cnt > 0) {
    MLSIM_GAUGE_SET(obs::names::kClusterWorkerBusyRatio,
                    sum / static_cast<double>(cnt));
  }
}

void DistCoordinator::refresh_health(const RunState* rs) {
  std::ostringstream os;
  os << "{\"status\":\"" << (rs != nullptr ? "running" : "idle")
     << "\",\"session\":" << session_
     << ",\"workers_connected\":" << workers_.size();
  if (rs != nullptr) {
    os << ",\"shards_done\":" << rs->done
       << ",\"shards_total\":" << rs->shards.size();
  }
  os << ",\"workers\":[";
  bool first = true;
  for (const auto& w : workers_) {
    os << (first ? "" : ",") << "{\"id\":" << w->uid
       << ",\"version\":" << w->version << ",\"completed\":" << w->completed
       << ",\"suspect\":" << (w->suspect ? "true" : "false")
       << ",\"busy_ratio\":";
    if (w->busy_ratio >= 0.0) {
      os << w->busy_ratio;
    } else {
      os << "null";
    }
    os << '}';
    first = false;
  }
  os << "],\"stats\":{\"workers_joined\":" << stats_.workers_joined
     << ",\"workers_lost\":" << stats_.workers_lost
     << ",\"workers_rejected\":" << stats_.workers_rejected
     << ",\"shards_dispatched\":" << stats_.shards_dispatched
     << ",\"shards_completed\":" << stats_.shards_completed
     << ",\"reassignments\":" << stats_.reassignments
     << ",\"duplicates_dropped\":" << stats_.duplicates_dropped
     << ",\"heartbeats\":" << stats_.heartbeats << "}}";
  std::lock_guard lk(health_mu_);
  health_json_ = os.str();
}

std::string DistCoordinator::cluster_json(std::size_t last_errors) const {
  std::string doc;
  {
    std::lock_guard lk(health_mu_);
    doc = health_json_;
  }
  if (last_errors > 0 && !doc.empty() && doc.back() == '}') {
    doc.insert(doc.size() - 1, ",\"last_errors\":" +
                                   obs::flight::last_errors_json(last_errors));
  }
  return doc;
}

}  // namespace mlsim::dist
