#include "dist/coordinator.h"

#include <algorithm>

#include "common/check.h"
#include "dist/protocol.h"
#include "net/frame.h"
#include "obs/metric_names.h"
#include "obs/obs.h"

namespace mlsim::dist {

namespace {

double us_since(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t)
      .count();
}

}  // namespace

DistCoordinator::DistCoordinator(net::TcpListener listener,
                                 CoordinatorOptions opts)
    : listener_(std::move(listener)), opts_(opts) {
  check(listener_.valid(), "coordinator needs a bound listener");
  check(opts_.max_assign_attempts > 0, "need at least one assignment attempt");
}

DistCoordinator::~DistCoordinator() { shutdown_workers(); }

void DistCoordinator::shutdown_workers() {
  for (auto& w : workers_) {
    if (w->dead) continue;
    try {
      net::send_frame(w->conn, encode_shutdown());
    } catch (const IoError&) {
      // Already gone; nothing to drain.
    }
  }
  workers_.clear();
}

void DistCoordinator::accept_joiners(const std::string& welcome) {
  // Drain the backlog: accept until the listener would block.
  for (;;) {
    auto conn = listener_.accept(0);
    if (!conn.has_value()) return;
    try {
      if (!conn->readable(opts_.handshake_timeout_ms)) {
        continue;  // never said Hello; drop
      }
      std::string payload;
      if (!net::recv_frame(*conn, payload)) continue;
      const auto version = decode_hello(payload, conn->peer());
      if (version != kProtocolVersion) {
        ++stats_.workers_rejected;
        net::send_frame(*conn,
                        encode_reject("protocol version " +
                                      std::to_string(version) +
                                      " unsupported (coordinator speaks " +
                                      std::to_string(kProtocolVersion) + ")"));
        continue;
      }
      net::send_frame(*conn, welcome);
    } catch (const IoError&) {
      continue;  // died mid-handshake
    } catch (const CheckError&) {
      continue;  // spoke garbage instead of Hello
    }
    auto w = std::make_unique<Worker>();
    w->conn = std::move(*conn);
    w->last_heard = Clock::now();
    workers_.push_back(std::move(w));
    ++stats_.workers_joined;
    MLSIM_COUNTER_ADD(obs::names::kDistWorkersJoined, 1);
  }
}

void DistCoordinator::drop_worker(Worker& w, RunState& rs) {
  if (w.dead) return;
  w.dead = true;
  w.conn.close();
  ++stats_.workers_lost;
  MLSIM_COUNTER_ADD(obs::names::kDistWorkersLost, 1);
  if (w.shard.has_value()) {
    const std::size_t s = *w.shard;
    w.shard.reset();
    if (rs.shards[s].state == ShardState::kAssigned &&
        rs.shards[s].owner == &w) {
      reassign(s, rs);
    }
  }
}

void DistCoordinator::reassign(std::size_t shard_idx, RunState& rs) {
  rs.shards[shard_idx].state = ShardState::kPending;
  rs.shards[shard_idx].owner = nullptr;
  ++stats_.reassignments;
  MLSIM_COUNTER_ADD(obs::names::kDistReassignments, 1);
}

void DistCoordinator::assign_pending(RunState& rs) {
  for (std::size_t s = 0; s < rs.shards.size(); ++s) {
    if (rs.shards[s].state != ShardState::kPending) continue;
    Worker* idle = nullptr;
    for (auto& w : workers_) {
      if (!w->dead && !w->suspect && !w->shard.has_value()) {
        idle = w.get();
        break;
      }
    }
    if (idle == nullptr) return;  // no capacity this tick
    check(rs.shards[s].attempts < opts_.max_assign_attempts,
          "shard " + std::to_string(s) + " exceeded its assignment budget (" +
              std::to_string(opts_.max_assign_attempts) + " attempts)");
    AssignMsg a;
    a.session = session_;
    a.shard = s;
    a.part_lo = rs.plan->shard_lo(s);
    a.part_hi = rs.plan->shard_hi(s);
    a.attempt = static_cast<std::uint32_t>(rs.shards[s].attempts);
    try {
      net::send_frame(idle->conn, encode_assign(a));
    } catch (const IoError&) {
      drop_worker(*idle, rs);
      --s;  // retry this shard against the remaining pool
      continue;
    }
    ++rs.shards[s].attempts;
    rs.shards[s].state = ShardState::kAssigned;
    rs.shards[s].owner = idle;
    idle->shard = s;
    idle->assigned_at = Clock::now();
    idle->last_heard = Clock::now();
    ++stats_.shards_dispatched;
    MLSIM_COUNTER_ADD(obs::names::kDistShardsDispatched, 1);
  }
}

void DistCoordinator::handle_frame(Worker& w, RunState& rs) {
  std::string payload;
  try {
    if (!net::recv_frame(w.conn, payload)) {
      drop_worker(w, rs);  // clean EOF: worker exited
      return;
    }
  } catch (const IoError&) {
    drop_worker(w, rs);  // reset, or a truncated/corrupt frame
    return;
  }
  w.last_heard = Clock::now();
  w.suspect = false;
  WorkerErrorMsg fatal;
  bool have_fatal = false;
  try {
    switch (peek_type(payload, w.conn.peer())) {
      case MsgType::kHeartbeat: {
        decode_heartbeat(payload, w.conn.peer());
        ++stats_.heartbeats;
        MLSIM_COUNTER_ADD(obs::names::kDistHeartbeats, 1);
        break;
      }
      case MsgType::kResult: {
        ResultDecoded d = decode_result(payload, w.conn.peer());
        const std::size_t s = d.header.shard;
        if (w.shard == s) w.shard.reset();
        if (d.header.session != session_ || s >= rs.shards.size() ||
            rs.shards[s].state == ShardState::kDone) {
          // Duplicate, or a late delivery for a shard already completed
          // elsewhere: outcomes are deterministic, so the first accepted
          // result is as good as any — drop idempotently.
          ++stats_.duplicates_dropped;
          MLSIM_COUNTER_ADD(obs::names::kDistDuplicatesDropped, 1);
          break;
        }
        check(d.outcome.part_lo == rs.plan->shard_lo(s) &&
                  d.outcome.part_hi == rs.plan->shard_hi(s),
              "shard result range does not match the plan");
        rs.shards[s].outcome = std::move(d.outcome);
        rs.shards[s].state = ShardState::kDone;
        rs.shards[s].owner = nullptr;
        ++rs.done;
        ++w.completed;
        ++stats_.shards_completed;
        MLSIM_COUNTER_ADD(obs::names::kDistShardsCompleted, 1);
        MLSIM_HIST_RECORD(obs::names::kDistShardLatencyUs,
                          us_since(w.assigned_at));
        break;
      }
      case MsgType::kWorkerError: {
        const WorkerErrorMsg m = decode_worker_error(payload, w.conn.peer());
        if (m.kind == 1) {
          // Deterministic content failure: rerunning elsewhere reproduces
          // it, so fail the run (outside this catch block).
          fatal = m;
          have_fatal = true;
          break;
        }
        // Worker-side transport trouble: requeue whatever it was running.
        if (w.shard.has_value()) {
          const std::size_t s = *w.shard;
          w.shard.reset();
          if (rs.shards[s].state == ShardState::kAssigned &&
              rs.shards[s].owner == &w) {
            reassign(s, rs);
          }
        }
        break;
      }
      default:
        // A worker must not send Hello/Welcome/Assign/Shutdown mid-run.
        drop_worker(w, rs);
        break;
    }
  } catch (const CheckError&) {
    // Undecodable or plan-inconsistent content: treat like transport loss.
    drop_worker(w, rs);
    return;
  }
  if (have_fatal) {
    throw CheckError("worker " + w.conn.peer() + " failed shard " +
                     std::to_string(fatal.shard) +
                     " deterministically: " + fatal.what);
  }
}

void DistCoordinator::reap_dead_workers() {
  workers_.erase(
      std::remove_if(workers_.begin(), workers_.end(),
                     [](const std::unique_ptr<Worker>& w) { return w->dead; }),
      workers_.end());
}

core::ParallelSimResult DistCoordinator::run(
    const trace::EncodedTrace& trace, const core::ParallelSimOptions& opts) {
  core::ParallelSimResult res;
  const std::size_t n = trace.size();
  res.instructions = n;
  if (n == 0) return res;

  MLSIM_TRACE_SPAN("dist/run");
  ++session_;
  const core::ShardPlan plan = core::ShardPlan::make(n, opts);
  const std::uint64_t fp = core::run_fingerprint(trace, opts, plan.parts);
  const std::string welcome =
      encode_welcome(session_, fp, RunConfig::from_options(opts), trace);

  RunState rs;
  rs.plan = &plan;
  rs.shards.resize(plan.num_shards);

  // Re-welcome workers that joined in a previous run: their session state
  // is stale until they see this run's config and trace.
  for (auto& w : workers_) {
    try {
      net::send_frame(w->conn, welcome);
    } catch (const IoError&) {
      drop_worker(*w, rs);
    }
  }
  reap_dead_workers();

  const auto started = Clock::now();
  const auto deadline =
      started + std::chrono::milliseconds(opts_.run_timeout_ms);
  // min_workers gates only the *initial* dispatch (don't race shards onto a
  // half-joined cluster). Once dispatch has begun, losing workers below the
  // floor must not stall the run — the survivors drain the queue.
  bool dispatching = false;
  while (rs.done < plan.num_shards) {
    if (opts.cancel != nullptr) opts.cancel->check();
    if (opts_.run_timeout_ms > 0 && Clock::now() > deadline) {
      throw IoError("distributed run timed out after " +
                    std::to_string(opts_.run_timeout_ms) + " ms with " +
                    std::to_string(rs.done) + "/" +
                    std::to_string(plan.num_shards) + " shards complete");
    }
    if (workers_.size() >= opts_.min_workers) dispatching = true;
    if (dispatching) assign_pending(rs);

    std::vector<int> fds;
    fds.reserve(workers_.size() + 1);
    fds.push_back(listener_.fd());
    for (auto& w : workers_) fds.push_back(w->conn.fd());
    const std::vector<bool> ready = net::poll_readable(fds, opts_.poll_ms);

    if (ready[0]) accept_joiners(welcome);
    // accept_joiners may have appended workers the poll never saw; only the
    // first fds.size()-1 entries have a ready bit.
    for (std::size_t i = 0; i + 1 < fds.size(); ++i) {
      if (ready[i + 1] && !workers_[i]->dead) {
        handle_frame(*workers_[i], rs);
      }
    }

    // Presume silent assigned workers dead: requeue their shards, but keep
    // the sockets open — a late Result is still accepted (or dropped as a
    // duplicate) if the worker was merely slow.
    const auto now = Clock::now();
    for (auto& w : workers_) {
      if (w->dead || !w->shard.has_value()) continue;
      const auto silent_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              now - w->last_heard)
              .count();
      if (silent_ms > opts_.heartbeat_timeout_ms) {
        const std::size_t s = *w->shard;
        w->shard.reset();
        w->suspect = true;
        if (rs.shards[s].state == ShardState::kAssigned &&
            rs.shards[s].owner == w.get()) {
          reassign(s, rs);
        }
      }
    }
    reap_dead_workers();
  }

  core::ShardMerger merger(plan, opts.record_predictions,
                           opts.record_context_counts);
  for (const Shard& s : rs.shards) merger.add(s.outcome);
  res = merger.finish(opts, /*predictor_flops=*/0);
  if (obs::enabled()) {
    for (const auto& w : workers_) {
      MLSIM_HIST_RECORD(obs::names::kDistShardsPerWorker,
                        static_cast<double>(w->completed));
    }
  }
  return res;
}

}  // namespace mlsim::dist
