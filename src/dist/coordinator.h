// Coordinator side of the distributed cluster (docs/DISTRIBUTED.md).
//
// Single-threaded, poll-driven: one loop multiplexes the listener and every
// worker connection. Per run it computes the ShardPlan (identically to the
// in-process engine), Welcomes each worker with the run config + trace,
// dispatches shard descriptors, tracks heartbeats, reassigns shards whose
// worker dies or goes silent, drops duplicate/late results idempotently,
// and merges the per-shard outcomes through ShardMerger — so the
// distributed CPI is bit-identical to a single-process ParallelSimulator
// run over the same trace, options, and seed.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/shard.h"
#include "net/socket.h"
#include "service/remote.h"

namespace mlsim::dist {

struct CoordinatorOptions {
  /// Workers that must have joined before the first shard is dispatched.
  std::size_t min_workers = 1;
  /// An assigned worker silent for longer than this is presumed dead: its
  /// shard is reassigned and the worker is marked suspect until it speaks.
  int heartbeat_timeout_ms = 2000;
  /// Poll granularity of the event loop.
  int poll_ms = 50;
  /// Times a shard may be (re)assigned before the run fails with
  /// CheckError. Each assignment uses a fresh attempt number, so the
  /// deterministic worker-kill schedule re-draws per attempt.
  std::size_t max_assign_attempts = 10;
  /// Wall-clock ceiling for one run; exceeded → IoError (the cluster is
  /// unavailable or wedged, not the simulation). 0 disables.
  int run_timeout_ms = 120000;
  /// Wait for a worker's Hello before giving up on the connection.
  int handshake_timeout_ms = 2000;
};

struct CoordinatorStats {
  std::size_t workers_joined = 0;
  std::size_t workers_lost = 0;
  std::size_t workers_rejected = 0;
  std::size_t shards_dispatched = 0;
  std::size_t shards_completed = 0;
  std::size_t reassignments = 0;
  std::size_t duplicates_dropped = 0;
  std::size_t heartbeats = 0;
};

class DistCoordinator final : public service::RemoteBackend {
 public:
  explicit DistCoordinator(net::TcpListener listener,
                           CoordinatorOptions opts = {});
  ~DistCoordinator() override;
  DistCoordinator(const DistCoordinator&) = delete;
  DistCoordinator& operator=(const DistCoordinator&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  std::size_t connected_workers() const { return workers_.size(); }
  const CoordinatorStats& stats() const { return stats_; }

  /// Run one distributed simulation over the connected (and still-joining)
  /// workers. Throws CheckError when a shard's content deterministically
  /// fails or its assignment budget is exhausted, IoError when the cluster
  /// cannot finish the run.
  core::ParallelSimResult run(const trace::EncodedTrace& trace,
                              const core::ParallelSimOptions& opts);

  core::ParallelSimResult run_remote(
      const trace::EncodedTrace& trace,
      const core::ParallelSimOptions& opts) override {
    return run(trace, opts);
  }

  /// Send Shutdown to every connected worker and drop the connections.
  void shutdown_workers();

  /// Thread-safe JSON snapshot of cluster state for the telemetry /healthz
  /// endpoint: session, shard progress, per-worker busy ratios, and run
  /// stats. Refreshed by the run loop each tick; `last_errors > 0` appends
  /// the flight-recorder post-mortems (docs/OBSERVABILITY.md).
  std::string cluster_json(std::size_t last_errors = 0) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Worker {
    net::TcpConn conn;
    bool dead = false;
    /// Heartbeat went stale: shard was reassigned, no new assignments until
    /// the worker speaks again.
    bool suspect = false;
    std::optional<std::size_t> shard;
    Clock::time_point last_heard;
    Clock::time_point assigned_at;
    std::size_t completed = 0;
    /// Protocol version from the worker's Hello; v2 additions are only sent
    /// to (and expected from) workers that speak them.
    std::uint32_t version = 0;
    /// Stable join-order id: pid of the worker's spans in the merged Chrome
    /// trace (the coordinator itself is pid 1), and "id" in cluster_json.
    std::uint32_t uid = 0;
    /// Last reported busy/wall fraction; negative until a v2 heartbeat.
    double busy_ratio = -1.0;
  };

  enum class ShardState { kPending, kAssigned, kDone };
  struct Shard {
    ShardState state = ShardState::kPending;
    std::size_t attempts = 0;  // assignments so far; next attempt index
    Worker* owner = nullptr;
    core::ShardOutcome outcome;
  };

  struct RunState {
    const core::ShardPlan* plan = nullptr;
    std::vector<Shard> shards;
    std::size_t done = 0;
  };

  void accept_joiners(const std::string& welcome);
  void handle_frame(Worker& w, RunState& rs);
  void drop_worker(Worker& w, RunState& rs);
  void reassign(std::size_t shard_idx, RunState& rs);
  void assign_pending(RunState& rs);
  void reap_dead_workers();
  /// Rebuild the cluster_json document (rs may be null between runs).
  void refresh_health(const RunState* rs);
  void update_busy_gauge();

  net::TcpListener listener_;
  CoordinatorOptions opts_;
  CoordinatorStats stats_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::uint64_t session_ = 0;
  std::uint32_t next_worker_uid_ = 1;
  /// Distributed trace id of the current run (0 between runs).
  std::uint64_t trace_id_ = 0;

  /// cluster_json is served from the telemetry thread while run() mutates
  /// everything above, so the document is prebuilt under its own mutex.
  mutable std::mutex health_mu_;
  std::string health_json_ = "{\"status\":\"idle\"}";
};

}  // namespace mlsim::dist
