// Coordinator side of the distributed cluster (docs/DISTRIBUTED.md).
//
// Single-threaded, poll-driven: one loop multiplexes the listener and every
// worker connection. Per run it computes the ShardPlan (identically to the
// in-process engine), Welcomes each worker with the run config + trace,
// dispatches shard descriptors, tracks heartbeats, reassigns shards whose
// worker dies or goes silent, drops duplicate/late results idempotently,
// and merges the per-shard outcomes through ShardMerger — so the
// distributed CPI is bit-identical to a single-process ParallelSimulator
// run over the same trace, options, and seed.
//
// The cluster is elastic (docs/DISTRIBUTED.md "Elasticity & churn"):
// workers join mid-run through the normal Hello/Welcome handshake and are
// put to work immediately, planned departures (Goodbye) requeue their shard
// without burning the heartbeat timeout, assigned shards can be stolen from
// slow workers or speculatively duplicated onto idle ones (first-result-
// wins dedup keeps the merge exact), and completed outcomes are memoized in
// a content-addressed result cache so repeated runs skip them entirely.
//
// The coordinator itself is crash-safe (docs/RESILIENCE.md "Crash-safe
// coordination"): with a run journal configured, every assignment and
// accepted result is fsynced before it takes effect, `resume` replays the
// journal into the result cache so a restarted coordinator never
// re-dispatches completed shards, protocol-v4 workers re-attach through the
// Rejoin handshake, and a wake_fd byte (SIGTERM via net::SignalPipe) drains
// the run gracefully instead of tearing it down.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/shard.h"
#include "dist/journal.h"
#include "dist/result_cache.h"
#include "net/socket.h"
#include "service/remote.h"

namespace mlsim::dist {

struct CoordinatorOptions {
  /// Workers that must have joined before the first shard is dispatched.
  std::size_t min_workers = 1;
  /// An assigned worker silent for longer than this is presumed dead: its
  /// shard is reassigned and the worker is marked suspect until it speaks.
  int heartbeat_timeout_ms = 2000;
  /// Poll granularity of the event loop.
  int poll_ms = 50;
  /// Times a shard may be (re)assigned before the run fails with
  /// CheckError. Each assignment uses a fresh attempt number, so the
  /// deterministic worker-kill schedule re-draws per attempt. Steals and
  /// speculative duplicates draw from the same budget but skip (rather than
  /// fail) a shard whose budget is spent.
  std::size_t max_assign_attempts = 10;
  /// Wall-clock ceiling for one run; exceeded → IoError (the cluster is
  /// unavailable or wedged, not the simulation). 0 disables.
  int run_timeout_ms = 120000;
  /// Wait for a worker's Hello before giving up on the connection.
  int handshake_timeout_ms = 2000;

  // ---- elasticity (all off by default) --------------------------------------
  /// Work stealing: when a worker goes idle with nothing pending, an
  /// assigned shard whose owner has held it longer than steal_grace_factor ×
  /// the fleet's EWMA shard latency is rebalanced onto the idle worker. The
  /// old owner keeps computing; whichever Result lands first wins.
  bool steal = false;
  double steal_grace_factor = 2.0;
  /// Speculative straggler dispatch: > 0 duplicates an in-flight shard onto
  /// an idle worker once its age exceeds this percentile of the run's
  /// completed-shard latencies (e.g. 95 = p95). Needs a few completions
  /// before it can tell a straggler from normal pace.
  double speculate_pct = 0.0;
  /// Content-addressed shard-result cache capacity in entries (LRU);
  /// 0 disables. Keyed by (run fingerprint, shard descriptor), so repeated
  /// or retried runs of identical work dispatch nothing.
  std::size_t result_cache_entries = 0;

  // ---- crash-safe coordination (docs/RESILIENCE.md) -------------------------
  /// Write-ahead run journal path; empty disables journaling. Every
  /// run-open / assignment / accepted result / run-close is appended and
  /// fsynced, so a killed coordinator loses at most the record being
  /// written.
  std::filesystem::path journal_path;
  /// Replay `journal_path` at construction and feed the completed shards of
  /// its last run into the result cache: a rerun of the same work (same run
  /// fingerprint) never re-dispatches them.
  bool resume = false;
  /// Replay treats a corrupt/truncated journal tail as fatal (CheckError)
  /// instead of dropping it — mirrors the checkpoint strict mode.
  bool journal_strict = false;
  /// Readable fd the run loop polls alongside the sockets; one readable
  /// byte requests a graceful drain (see net::SignalPipe). -1 disables.
  int wake_fd = -1;
  /// Once a drain is requested, in-flight shards get this long to finish
  /// before the run closes anyway.
  int drain_timeout_ms = 5000;
};

struct CoordinatorStats {
  std::size_t workers_joined = 0;
  std::size_t workers_lost = 0;
  std::size_t workers_rejected = 0;
  /// Planned departures (Goodbye), not counted in workers_lost.
  std::size_t workers_departed = 0;
  std::size_t shards_dispatched = 0;
  std::size_t shards_completed = 0;
  std::size_t reassignments = 0;
  std::size_t duplicates_dropped = 0;
  std::size_t heartbeats = 0;
  /// Assigned shards rebalanced away from slow workers onto idle ones.
  std::size_t steals = 0;
  /// Straggling shards duplicated onto an idle worker.
  std::size_t speculations = 0;
  /// Result-cache accounting (cumulative across runs).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_evictions = 0;
  /// v4 Rejoin handshakes accepted (token matched the current run).
  std::size_t workers_rejoined = 0;
  /// Completed shards rebuilt from the journal by `resume`.
  std::size_t journal_replayed = 0;
};

class DistCoordinator final : public service::RemoteBackend {
 public:
  explicit DistCoordinator(net::TcpListener listener,
                           CoordinatorOptions opts = {});
  ~DistCoordinator() override;
  DistCoordinator(const DistCoordinator&) = delete;
  DistCoordinator& operator=(const DistCoordinator&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  /// Thread-safe snapshots for the telemetry thread: both read the copy the
  /// run loop publishes under health_mu_ each tick (never the live state the
  /// loop is mutating).
  std::size_t connected_workers() const;
  CoordinatorStats stats() const;

  /// Run one distributed simulation over the connected (and still-joining)
  /// workers. Throws CheckError when a shard's content deterministically
  /// fails or its assignment budget is exhausted, IoError when the cluster
  /// cannot finish the run.
  core::ParallelSimResult run(const trace::EncodedTrace& trace,
                              const core::ParallelSimOptions& opts);

  core::ParallelSimResult run_remote(
      const trace::EncodedTrace& trace,
      const core::ParallelSimOptions& opts) override {
    return run(trace, opts);
  }

  /// Send Shutdown to every connected worker and drop the connections.
  void shutdown_workers();

  /// True once a wake_fd byte requested a graceful drain. Run() then either
  /// finished cleanly (every shard done before the request took effect) or
  /// threw DrainError; either way the driver should exit with the drained
  /// code.
  bool drain_requested() const { return drain_requested_; }

  /// Thread-safe JSON snapshot of cluster state for the telemetry /healthz
  /// endpoint: session, shard progress, per-worker busy ratios, and run
  /// stats. Refreshed by the run loop each tick; `last_errors > 0` appends
  /// the flight-recorder post-mortems (docs/OBSERVABILITY.md).
  std::string cluster_json(std::size_t last_errors = 0) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Worker {
    net::TcpConn conn;
    bool dead = false;
    /// Heartbeat went stale: shard was reassigned, no new assignments until
    /// the worker speaks again.
    bool suspect = false;
    std::optional<std::size_t> shard;
    Clock::time_point last_heard;
    Clock::time_point assigned_at;
    std::size_t completed = 0;
    /// Protocol version from the worker's Hello; v2 additions are only sent
    /// to (and expected from) workers that speak them.
    std::uint32_t version = 0;
    /// Stable join-order id: pid of the worker's spans in the merged Chrome
    /// trace (the coordinator itself is pid 1), and "id" in cluster_json.
    std::uint32_t uid = 0;
    /// Last reported busy/wall fraction; negative until a v2 heartbeat.
    /// Never set for pre-v2 workers (they cannot report it), so they are
    /// structurally excluded from the mean-busy gauge.
    double busy_ratio = -1.0;
    /// EWMA of this worker's completed-shard latency (µs); < 0 until its
    /// first completion. The steal/speculation pace signal.
    double ewma_shard_us = -1.0;
  };

  enum class ShardState { kPending, kAssigned, kDone };
  struct Shard {
    ShardState state = ShardState::kPending;
    std::size_t attempts = 0;  // assignments so far; next attempt index
    Worker* owner = nullptr;
    /// Speculative duplicate's worker, when the shard was duplicated onto an
    /// idle worker; first Result (owner's or spec's) wins.
    Worker* spec = nullptr;
    core::ShardOutcome outcome;
  };

  struct RunState {
    const core::ShardPlan* plan = nullptr;
    std::uint64_t fingerprint = 0;
    std::vector<Shard> shards;
    std::size_t done = 0;
    /// Completed-shard latencies (µs) of this run: the speculation
    /// percentile's sample.
    std::vector<double> latencies_us;
  };

  /// The per-version Welcome frames of the current run: pre-v4 workers get
  /// the byte-exact legacy payload (their strict decoders reject the v4
  /// trailing session token).
  struct WelcomeFrames {
    std::string v4;
    std::string legacy;
  };

  void accept_joiners(const WelcomeFrames& welcome, RunState& rs);
  void handle_frame(Worker& w, RunState& rs);
  void drop_worker(Worker& w, RunState& rs);
  /// Remove w from whichever side of its shard it holds: clears a spec slot,
  /// promotes a live spec when the owner leaves, requeues otherwise.
  void detach_worker_from_shard(Worker& w, RunState& rs);
  void reassign(std::size_t shard_idx, RunState& rs);
  /// Send one Assign for shard s to w (consumes one attempt). Returns false
  /// (after dropping w) when the send fails; the caller decides owner/spec.
  bool send_assign(Worker& w, std::size_t s, RunState& rs);
  void assign_pending(RunState& rs);
  /// Work stealing + speculative straggler dispatch over idle workers; runs
  /// only when nothing is pending (real work always takes precedence).
  void rebalance(RunState& rs);
  /// Mean expected shard latency (µs) over workers with a pace EWMA, each
  /// de-rated by its reported busy ratio; < 0 until any worker completed.
  double fleet_pace_us() const;
  void reap_dead_workers();
  /// Close the drained run: journal run-close, count abandoned shards,
  /// shut the workers down, and throw DrainError.
  [[noreturn]] void finish_drain(RunState& rs);
  /// Rebuild the cluster_json document and the stats/worker-count snapshots
  /// (rs may be null between runs).
  void refresh_health(const RunState* rs);
  void update_busy_gauge();

  net::TcpListener listener_;
  CoordinatorOptions opts_;
  CoordinatorStats stats_;
  ShardResultCache cache_;
  RunJournal journal_;
  /// Journal replay held from construction until the first run() consumes
  /// it (the fingerprint is only known once the run's trace arrives).
  std::optional<JournalReplay> resume_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::uint64_t session_ = 0;
  /// v4 rejoin token of the current run; derived from the run fingerprint,
  /// so a restarted coordinator resuming the same work issues the identical
  /// token and pre-restart workers can re-attach. 0 between runs.
  std::uint64_t session_token_ = 0;
  bool drain_requested_ = false;
  Clock::time_point drain_deadline_{};
  /// `lifecycle` field of cluster_json: starting|replaying|serving|draining.
  const char* lifecycle_ = "starting";
  std::uint32_t next_worker_uid_ = 1;
  /// Distributed trace id of the current run (0 between runs).
  std::uint64_t trace_id_ = 0;

  /// cluster_json, stats() and connected_workers() are served from the
  /// telemetry thread while run() mutates everything above, so the run loop
  /// publishes consistent snapshots under their own mutex.
  mutable std::mutex health_mu_;
  std::string health_json_ = "{\"status\":\"idle\"}";
  CoordinatorStats stats_snapshot_;
  std::size_t workers_snapshot_ = 0;
};

}  // namespace mlsim::dist
