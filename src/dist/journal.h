// Durable run journal for the coordinator (docs/RESILIENCE.md "Crash-safe
// coordination").
//
// A write-ahead log of one coordinator run: run-open (fingerprint +
// options), every shard assignment, every accepted shard result (the raw
// Result frame payload, byte-for-byte), and run-close. Each record is one
// checksummed wire envelope (common/wire.h) appended and fsynced before the
// coordinator acts on the event it describes, so a SIGKILL at any instant
// loses at most the record being written — and that torn tail is caught by
// the envelope's length/checksum pair on replay.
//
// Replay mirrors the checkpoint taxonomy (src/core/checkpoint.*): a missing
// journal is simply "nothing to resume", a corrupt or truncated tail is
// dropped in lenient mode and a CheckError in strict mode, and duplicate
// result records for one shard are idempotent (first wins — outcomes are
// deterministic). A restarted coordinator feeds the replayed outcomes into
// its result cache, so completed shards are never re-dispatched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string_view>

#include "core/shard.h"
#include "dist/protocol.h"

namespace mlsim::dist {

/// Journal record envelope magic ("MLJL"): distinct from every other magic
/// (trace, frame, model, checkpoints, bundle) so a journal piped anywhere
/// else — or vice versa — is rejected on the first 4 bytes.
inline constexpr std::uint32_t kJournalMagic = 0x4d4c4a4c;

/// Ceiling on one journal record's payload (a Result frame with spans is
/// the largest). Finite, so a garbage size field in a corrupt tail cannot
/// drive an unbounded allocation during replay.
inline constexpr std::uint64_t kMaxJournalRecord = 1ull << 30;

/// What one journal replay rebuilt. State describes the *last* run-open
/// section in the file (a journal reused across runs supersedes earlier
/// sections — each section re-journals the results it inherited, so the
/// last one is self-contained).
struct JournalReplay {
  /// The file existed and yielded at least one intact record.
  bool found = false;
  /// The last run-open has no matching run-close: the coordinator died (or
  /// was killed) mid-run and the results below are worth resuming.
  bool open_run = false;
  /// Status of the run-close record when one was seen (kStatusComplete or
  /// kStatusDrained).
  std::uint32_t close_status = 0;
  std::uint64_t session = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t num_shards = 0;
  RunConfig config;
  /// Completed shard outcomes, deduped by shard index (first record wins).
  std::map<std::uint64_t, core::ShardOutcome> results;
  /// Intact records decoded (all kinds, all sections).
  std::size_t records = 0;
  /// Result records dropped because their shard was already replayed.
  std::size_t duplicates = 0;
  /// Corrupt/truncated tail bytes dropped (lenient mode only).
  std::size_t dropped_bytes = 0;
};

/// Append-fsync writer plus the static replay. The writer keeps one fd open
/// in O_APPEND mode; every record is sealed individually, written whole,
/// and fsynced before the call returns — the durability point the
/// coordinator orders its side effects around.
class RunJournal {
 public:
  /// run-close statuses.
  static constexpr std::uint32_t kStatusComplete = 0;  // merged normally
  static constexpr std::uint32_t kStatusDrained = 1;   // SIGTERM/SIGINT drain

  RunJournal() = default;
  ~RunJournal();
  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  /// Open (creating if absent) for append. Throws IoError on filesystem
  /// failure.
  void open(const std::filesystem::path& path);
  bool enabled() const { return fd_ >= 0; }
  void close();

  void run_open(std::uint64_t session, std::uint64_t fingerprint,
                std::uint64_t num_shards, const RunConfig& cfg);
  void assign(std::uint64_t session, std::uint64_t shard,
              std::uint32_t attempt);
  /// `result_frame` is the Result message payload exactly as it crossed the
  /// wire (or as re-encoded by encode_result for cache-served shards) —
  /// replay decodes it with the same decode_result the coordinator uses.
  void result(std::uint64_t session, std::string_view result_frame);
  void run_close(std::uint64_t session, std::uint32_t status);

  /// Replay `path`. A missing file returns {found = false}. A corrupt or
  /// truncated tail is dropped when `strict` is false and throws CheckError
  /// when true; anything before the first bad byte is kept either way.
  static JournalReplay replay(const std::filesystem::path& path, bool strict);

 private:
  void append(std::uint32_t kind, std::string_view body);

  int fd_ = -1;
  std::filesystem::path path_;
};

}  // namespace mlsim::dist
