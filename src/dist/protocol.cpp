#include "dist/protocol.h"

#include <algorithm>

#include "common/check.h"
#include "trace/encoder.h"

namespace mlsim::dist {

namespace {

using wire::Reader;
using wire::Writer;

void put_type(Writer& w, MsgType t) {
  w.pod(static_cast<std::uint32_t>(t));
}

/// Skip-and-verify the leading type word.
void expect_type(Reader& r, MsgType want, const std::string& context) {
  const auto got = r.pod<std::uint32_t>();
  check(got == static_cast<std::uint32_t>(want),
        "unexpected message type " + std::to_string(got) + " from " + context);
}

void put_outcome(Writer& w, const core::ShardOutcome& o) {
  w.pod(o.part_lo);
  w.pod(o.part_hi);
  w.vec(o.partition_cycles);
  w.vec(o.partition_steps);
  w.vec(o.partition_wasted);
  w.vec(o.final_attempt);
  w.vec(o.failed_partitions);
  w.vec(o.degraded_partitions);
  w.pod(o.warmup_instructions);
  w.pod(o.corrected_instructions);
  w.pod(o.retries);
  w.pod(o.backoff_us);
  w.pod(o.gpu_lost);
  w.pod(o.occupancy);
  w.vec(o.predictions);
  w.vec(o.context_counts);
}

core::ShardOutcome get_outcome(Reader& r) {
  core::ShardOutcome o;
  o.part_lo = r.pod<std::uint64_t>();
  o.part_hi = r.pod<std::uint64_t>();
  o.partition_cycles = r.vec<std::uint64_t>();
  o.partition_steps = r.vec<std::uint64_t>();
  o.partition_wasted = r.vec<std::uint64_t>();
  o.final_attempt = r.vec<std::uint32_t>();
  o.failed_partitions = r.vec<std::uint64_t>();
  o.degraded_partitions = r.vec<std::uint64_t>();
  o.warmup_instructions = r.pod<std::uint64_t>();
  o.corrected_instructions = r.pod<std::uint64_t>();
  o.retries = r.pod<std::uint64_t>();
  o.backoff_us = r.pod<double>();
  o.gpu_lost = r.pod<std::uint8_t>();
  o.occupancy = r.pod<RunningStats::State>();
  o.predictions = r.vec<core::LatencyPrediction>();
  o.context_counts = r.vec<std::uint16_t>();
  return o;
}

}  // namespace

void put_run_config(Writer& w, const RunConfig& c) {
  w.pod(c.num_subtraces);
  w.pod(c.num_gpus);
  w.pod(c.context_length);
  w.pod(c.warmup);
  w.pod(c.post_error_correction);
  w.pod(c.correction_limit);
  w.pod(c.record_predictions);
  w.pod(c.record_context_counts);
  w.pod(c.anomaly_latency_limit);
  w.pod(c.max_retries_per_partition);
  w.pod(c.retry_backoff_us);
  w.pod(c.faults_enabled);
  w.pod(c.fault_seed);
  w.pod(c.device_kill_rate);
  w.pod(c.straggler_rate);
  w.pod(c.straggler_slowdown);
  w.pod(c.output_corrupt_rate);
  w.pod(c.worker_kill_rate);
}

RunConfig get_run_config(Reader& r) {
  RunConfig c;
  c.num_subtraces = r.pod<std::uint64_t>();
  c.num_gpus = r.pod<std::uint64_t>();
  c.context_length = r.pod<std::uint64_t>();
  c.warmup = r.pod<std::uint64_t>();
  c.post_error_correction = r.pod<std::uint8_t>();
  c.correction_limit = r.pod<std::uint64_t>();
  c.record_predictions = r.pod<std::uint8_t>();
  c.record_context_counts = r.pod<std::uint8_t>();
  c.anomaly_latency_limit = r.pod<std::uint32_t>();
  c.max_retries_per_partition = r.pod<std::uint64_t>();
  c.retry_backoff_us = r.pod<double>();
  c.faults_enabled = r.pod<std::uint8_t>();
  c.fault_seed = r.pod<std::uint64_t>();
  c.device_kill_rate = r.pod<double>();
  c.straggler_rate = r.pod<double>();
  c.straggler_slowdown = r.pod<double>();
  c.output_corrupt_rate = r.pod<double>();
  c.worker_kill_rate = r.pod<double>();
  return c;
}

RunConfig RunConfig::from_options(const core::ParallelSimOptions& o) {
  RunConfig c;
  c.num_subtraces = o.num_subtraces;
  c.num_gpus = o.num_gpus;
  c.context_length = o.context_length;
  c.warmup = o.warmup;
  c.post_error_correction = o.post_error_correction ? 1 : 0;
  c.correction_limit = o.correction_limit;
  c.record_predictions = o.record_predictions ? 1 : 0;
  c.record_context_counts = o.record_context_counts ? 1 : 0;
  c.anomaly_latency_limit = o.anomaly_latency_limit;
  c.max_retries_per_partition = o.max_retries_per_partition;
  c.retry_backoff_us = o.retry_backoff_us;
  if (o.faults != nullptr && o.faults->enabled()) {
    const device::FaultOptions& f = o.faults->options();
    c.faults_enabled = 1;
    c.fault_seed = f.seed;
    c.device_kill_rate = f.device_kill_rate;
    c.straggler_rate = f.straggler_rate;
    c.straggler_slowdown = f.straggler_slowdown;
    c.output_corrupt_rate = f.output_corrupt_rate;
    c.worker_kill_rate = f.worker_kill_rate;
  }
  return c;
}

core::ParallelSimOptions RunConfig::to_options(
    const device::FaultInjector* faults) const {
  core::ParallelSimOptions o;
  o.num_subtraces = num_subtraces;
  o.num_gpus = num_gpus;
  o.context_length = context_length;
  o.warmup = warmup;
  o.post_error_correction = post_error_correction != 0;
  o.correction_limit = correction_limit;
  o.record_predictions = record_predictions != 0;
  o.record_context_counts = record_context_counts != 0;
  o.anomaly_latency_limit = anomaly_latency_limit;
  o.max_retries_per_partition = max_retries_per_partition;
  o.retry_backoff_us = retry_backoff_us;
  o.faults = faults;
  return o;
}

device::FaultOptions RunConfig::fault_options() const {
  device::FaultOptions f;
  f.seed = fault_seed;
  f.device_kill_rate = device_kill_rate;
  f.straggler_rate = straggler_rate;
  f.straggler_slowdown = straggler_slowdown;
  f.output_corrupt_rate = output_corrupt_rate;
  f.worker_kill_rate = worker_kill_rate;
  return f;
}

MsgType peek_type(std::string_view payload, const std::string& context) {
  Reader r(payload, context);
  const auto t = r.pod<std::uint32_t>();
  check(t >= static_cast<std::uint32_t>(MsgType::kHello) &&
            t <= static_cast<std::uint32_t>(MsgType::kRejoin),
        "unknown message type " + std::to_string(t) + " from " + context);
  return static_cast<MsgType>(t);
}

std::string encode_hello(std::uint32_t protocol_version) {
  Writer w;
  put_type(w, MsgType::kHello);
  w.pod(protocol_version);
  return w.take();
}

std::string encode_welcome(std::uint64_t session, std::uint64_t fingerprint,
                           const RunConfig& cfg,
                           const trace::EncodedTrace& trace,
                           std::uint64_t token,
                           std::uint32_t protocol_version) {
  Writer w;
  put_type(w, MsgType::kWelcome);
  w.pod(session);
  w.pod(fingerprint);
  put_run_config(w, cfg);
  w.str(trace.benchmark());
  w.pod(static_cast<std::uint64_t>(trace.size()));
  w.pod(static_cast<std::uint8_t>(trace.labeled() ? 1 : 0));
  w.vec(trace.raw_features());
  w.vec(trace.raw_targets());
  if (protocol_version >= 4) {
    w.pod(token);
  }
  return w.take();
}

std::string encode_rejoin(const RejoinMsg& m) {
  Writer w;
  put_type(w, MsgType::kRejoin);
  w.pod(m.version);
  w.pod(m.token);
  w.pod(m.session);
  w.pod(m.shard);
  return w.take();
}

std::string encode_reject(const std::string& reason) {
  Writer w;
  put_type(w, MsgType::kReject);
  w.str(reason);
  return w.take();
}

std::string encode_assign(const AssignMsg& m, std::uint32_t protocol_version) {
  Writer w;
  put_type(w, MsgType::kAssign);
  w.pod(m.session);
  w.pod(m.shard);
  w.pod(m.part_lo);
  w.pod(m.part_hi);
  w.pod(m.attempt);
  if (protocol_version >= 2) {
    w.pod(m.trace_id);
    w.pod(m.parent_span);
  }
  return w.take();
}

std::string encode_result(const ResultHeader& h, const core::ShardOutcome& o,
                          std::uint64_t trace_id,
                          const std::vector<obs::SpanRecord>& spans) {
  Writer w;
  put_type(w, MsgType::kResult);
  w.pod(h.session);
  w.pod(h.shard);
  w.pod(h.attempt);
  put_outcome(w, o);
  w.pod(trace_id);
  w.pod(static_cast<std::uint64_t>(spans.size()));
  for (const obs::SpanRecord& s : spans) {
    w.str(s.name);
    w.pod(s.ts_ns);
    w.pod(s.dur_ns);
    w.pod(s.depth);
    w.pod(s.tid);
  }
  return w.take();
}

std::string encode_heartbeat(const HeartbeatMsg& m,
                             std::uint32_t protocol_version) {
  Writer w;
  put_type(w, MsgType::kHeartbeat);
  w.pod(m.session);
  w.pod(m.shard);
  if (protocol_version >= 2) {
    w.pod(m.busy_ratio);
    w.pod(static_cast<std::uint32_t>(m.rollups.size()));
    for (const RollupDelta& d : m.rollups) {
      w.pod(d.id);
      w.pod(d.delta);
    }
  }
  return w.take();
}

std::string encode_shutdown() {
  Writer w;
  put_type(w, MsgType::kShutdown);
  return w.take();
}

std::string encode_worker_error(const WorkerErrorMsg& m) {
  Writer w;
  put_type(w, MsgType::kWorkerError);
  w.pod(m.session);
  w.pod(m.shard);
  w.pod(m.kind);
  w.str(m.what);
  return w.take();
}

std::string encode_goodbye(const GoodbyeMsg& m) {
  Writer w;
  put_type(w, MsgType::kGoodbye);
  w.pod(m.session);
  w.pod(m.shard);
  return w.take();
}

std::uint32_t decode_hello(std::string_view payload,
                           const std::string& context) {
  Reader r(payload, context);
  expect_type(r, MsgType::kHello, context);
  const auto v = r.pod<std::uint32_t>();
  r.finish();
  return v;
}

WelcomeDecoded decode_welcome(std::string_view payload,
                              const std::string& context) {
  Reader r(payload, context);
  expect_type(r, MsgType::kWelcome, context);
  WelcomeDecoded d;
  d.session = r.pod<std::uint64_t>();
  d.fingerprint = r.pod<std::uint64_t>();
  d.config = get_run_config(r);
  const std::string benchmark = r.str();
  const auto n = r.pod<std::uint64_t>();
  const auto labeled = r.pod<std::uint8_t>();
  const auto features = r.vec<std::int32_t>();
  const auto targets = r.vec<std::uint32_t>();
  if (r.remaining() > 0) {  // v4 trailing session token
    d.token = r.pod<std::uint64_t>();
  }
  r.finish();
  check(features.size() == n * trace::kNumFeatures,
        "welcome trace feature matrix shape mismatch from " + context);
  check(!labeled || targets.size() == n * trace::kNumTargets,
        "welcome trace target matrix shape mismatch from " + context);
  d.trace = trace::EncodedTrace(benchmark);
  d.trace.reserve(n);
  trace::FeatureVector row;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::copy_n(features.begin() +
                    static_cast<std::ptrdiff_t>(i * trace::kNumFeatures),
                trace::kNumFeatures, row.begin());
    if (labeled) {
      const std::size_t t = i * trace::kNumTargets;
      d.trace.append(row, targets[t], targets[t + 1], targets[t + 2]);
    } else {
      d.trace.append(row);
    }
  }
  return d;
}

std::string decode_reject(std::string_view payload,
                          const std::string& context) {
  Reader r(payload, context);
  expect_type(r, MsgType::kReject, context);
  std::string reason = r.str();
  r.finish();
  return reason;
}

AssignMsg decode_assign(std::string_view payload, const std::string& context) {
  Reader r(payload, context);
  expect_type(r, MsgType::kAssign, context);
  AssignMsg m;
  m.session = r.pod<std::uint64_t>();
  m.shard = r.pod<std::uint64_t>();
  m.part_lo = r.pod<std::uint64_t>();
  m.part_hi = r.pod<std::uint64_t>();
  m.attempt = r.pod<std::uint32_t>();
  if (r.remaining() > 0) {  // v2 trailing trace context
    m.trace_id = r.pod<std::uint64_t>();
    m.parent_span = r.pod<std::uint64_t>();
  }
  r.finish();
  return m;
}

ResultDecoded decode_result(std::string_view payload,
                            const std::string& context) {
  Reader r(payload, context);
  expect_type(r, MsgType::kResult, context);
  ResultDecoded d;
  d.header.session = r.pod<std::uint64_t>();
  d.header.shard = r.pod<std::uint64_t>();
  d.header.attempt = r.pod<std::uint32_t>();
  d.outcome = get_outcome(r);
  if (r.remaining() > 0) {  // v2 trailing span buffer
    d.trace_id = r.pod<std::uint64_t>();
    const auto n = r.pod<std::uint64_t>();
    d.spans.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      obs::SpanRecord s;
      s.name = r.str();
      s.ts_ns = r.pod<std::uint64_t>();
      s.dur_ns = r.pod<std::uint64_t>();
      s.depth = r.pod<std::uint32_t>();
      s.tid = r.pod<std::uint32_t>();
      d.spans.push_back(std::move(s));
    }
  }
  r.finish();
  return d;
}

HeartbeatMsg decode_heartbeat(std::string_view payload,
                              const std::string& context) {
  Reader r(payload, context);
  expect_type(r, MsgType::kHeartbeat, context);
  HeartbeatMsg m;
  m.session = r.pod<std::uint64_t>();
  m.shard = r.pod<std::uint64_t>();
  if (r.remaining() > 0) {  // v2 trailing busy_ratio + rollup deltas
    m.busy_ratio = r.pod<double>();
    const auto n = r.pod<std::uint32_t>();
    m.rollups.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      RollupDelta d;
      d.id = r.pod<std::uint32_t>();
      d.delta = r.pod<std::uint64_t>();
      m.rollups.push_back(d);
    }
  }
  r.finish();
  return m;
}

WorkerErrorMsg decode_worker_error(std::string_view payload,
                                   const std::string& context) {
  Reader r(payload, context);
  expect_type(r, MsgType::kWorkerError, context);
  WorkerErrorMsg m;
  m.session = r.pod<std::uint64_t>();
  m.shard = r.pod<std::uint64_t>();
  m.kind = r.pod<std::uint32_t>();
  m.what = r.str();
  r.finish();
  return m;
}

GoodbyeMsg decode_goodbye(std::string_view payload,
                          const std::string& context) {
  Reader r(payload, context);
  expect_type(r, MsgType::kGoodbye, context);
  GoodbyeMsg m;
  m.session = r.pod<std::uint64_t>();
  m.shard = r.pod<std::uint64_t>();
  r.finish();
  return m;
}

RejoinMsg decode_rejoin(std::string_view payload, const std::string& context) {
  Reader r(payload, context);
  expect_type(r, MsgType::kRejoin, context);
  RejoinMsg m;
  m.version = r.pod<std::uint32_t>();
  m.token = r.pod<std::uint64_t>();
  m.session = r.pod<std::uint64_t>();
  m.shard = r.pod<std::uint64_t>();
  r.finish();
  return m;
}

}  // namespace mlsim::dist
