#include "dist/result_cache.h"

#include "obs/metric_names.h"
#include "obs/obs.h"

namespace mlsim::dist {

const core::ShardOutcome* ShardResultCache::lookup(const Key& k) {
  if (!enabled()) return nullptr;
  const auto it = index_.find(as_tuple(k));
  if (it == index_.end()) {
    ++misses_;
    MLSIM_COUNTER_ADD(obs::names::kClusterCacheMisses, 1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  MLSIM_COUNTER_ADD(obs::names::kClusterCacheHits, 1);
  return &it->second->second;
}

void ShardResultCache::insert(const Key& k, core::ShardOutcome outcome) {
  if (!enabled()) return;
  const KeyTuple t = as_tuple(k);
  if (const auto it = index_.find(t); it != index_.end()) {
    it->second->second = std::move(outcome);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(t, std::move(outcome));
  index_[t] = lru_.begin();
  if (lru_.size() > max_entries_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
    MLSIM_COUNTER_ADD(obs::names::kClusterCacheEvictions, 1);
  }
  MLSIM_GAUGE_SET(obs::names::kClusterCacheEntries,
                  static_cast<double>(lru_.size()));
}

}  // namespace mlsim::dist
