// RPC framing: one wire envelope (common/wire.h) per message, sent as-is
// over a TcpConn. The receiver reads the fixed-size envelope header first,
// validates magic/version and the declared payload size against a hard cap,
// then reads and checksums the payload — a truncated, corrupt, or oversized
// frame surfaces as a typed IoError naming the peer, never a hang or an
// out-of-bounds read (docs/DISTRIBUTED.md).
#pragma once

#include <cstdint>
#include <string>

#include "net/socket.h"

namespace mlsim::net {

/// Frame envelope magic ("MLFP"). Distinct from the checkpoint magics so a
/// checkpoint file piped at a socket is rejected on the first 4 bytes.
inline constexpr std::uint32_t kFrameMagic = 0x4d4c4650;

/// Ceiling on a single frame's payload. Generous (a shipped trace is the
/// largest message) but finite, so a garbage size field cannot drive an
/// unbounded allocation.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

/// Seal `payload` in the wire envelope and send it.
void send_frame(TcpConn& conn, std::string_view payload);

/// Receive one frame's payload. Blocks until a full frame arrives; call
/// after conn.readable() to bound the wait. Returns false on clean EOF at a
/// frame boundary; throws IoError on transport failure, EOF mid-frame, or
/// an envelope that fails validation (bad magic/version/size/checksum).
bool recv_frame(TcpConn& conn, std::string& payload);

}  // namespace mlsim::net
