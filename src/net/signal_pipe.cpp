#include "net/signal_pipe.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace mlsim::net {

namespace {

// Everything the handler touches is a lock-free atomic at file scope:
// sigaction-installed handlers may run on any thread, concurrently with
// install() only before the handlers are registered (install publishes the
// write fd first).
std::atomic<int> g_write_fd{-1};
std::atomic<int> g_signal_count{0};
std::atomic<int> g_last_signal{0};
std::atomic<int> g_force_exit_code{1};

extern "C" void mlsim_signal_handler(int signo) {
  g_last_signal.store(signo, std::memory_order_relaxed);
  const int count = g_signal_count.fetch_add(1, std::memory_order_acq_rel);
  if (count >= 1) {
    // Second signal: the drain is hung or the operator is impatient.
    // _exit is async-signal-safe; nothing else here is allowed to be slow.
    _exit(g_force_exit_code.load(std::memory_order_relaxed));
  }
  const int fd = g_write_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // A full pipe means a wake-up is already pending — EAGAIN is fine.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

}  // namespace

SignalPipe::SignalPipe(int force_exit_code) {
  int fds[2] = {-1, -1};
  check(::pipe(fds) == 0,
        std::string("signal pipe creation failed: ") + std::strerror(errno));
  for (const int fd : fds) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  read_fd_ = fds[0];
  g_force_exit_code.store(force_exit_code, std::memory_order_relaxed);
  g_write_fd.store(fds[1], std::memory_order_release);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = mlsim_signal_handler;
  sigemptyset(&sa.sa_mask);
  // SA_RESTART keeps unrelated slow syscalls (artifact reads, accept) from
  // failing with EINTR; the poll loops wake via the pipe fd instead.
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

SignalPipe& SignalPipe::install(int force_exit_code) {
  static SignalPipe instance(force_exit_code);
  return instance;
}

bool SignalPipe::signalled() const {
  return g_signal_count.load(std::memory_order_acquire) > 0;
}

int SignalPipe::last_signal() const {
  return g_last_signal.load(std::memory_order_relaxed);
}

}  // namespace mlsim::net
