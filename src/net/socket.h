// Minimal blocking TCP sockets for the distributed cluster
// (docs/DISTRIBUTED.md). POSIX sockets + poll(2) only — no external
// dependencies; everything is synchronous and the coordinator multiplexes
// connections with poll_readable() rather than threads.
//
// Error taxonomy (docs/RESILIENCE.md): every transport failure — refused
// connection, peer reset, EOF mid-message — is a typed IoError naming the
// peer. Content-level corruption is diagnosed one layer up (net/frame.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mlsim::net {

/// A "host:port" pair. parse_host_port() is the one strict parser used by
/// every CLI surface that accepts an endpoint.
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

/// Strict endpoint parse: non-empty host, decimal port in [1, 65535], no
/// sign/whitespace/garbage. Returns nullopt on any violation.
std::optional<HostPort> parse_host_port(const std::string& s);

/// One connected TCP stream. Move-only; the destructor closes the fd.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd, std::string peer);
  ~TcpConn();
  TcpConn(TcpConn&& other) noexcept;
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  /// Connect to host:port. Throws IoError on resolution/connection failure.
  static TcpConn connect(const std::string& host, std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// "host:port" of the peer, for error messages and logs.
  const std::string& peer() const { return peer_; }

  /// Write exactly `size` bytes. Throws IoError on any failure.
  void send_all(const void* data, std::size_t size);
  /// Read exactly `size` bytes. Throws IoError on failure or EOF mid-read.
  /// Returns false (reads nothing) on clean EOF at a message boundary when
  /// `eof_ok`; EOF with partial data is always an IoError.
  bool recv_all(void* data, std::size_t size, bool eof_ok = false);
  /// Read whatever is available, up to `cap` bytes (blocking until at least
  /// one byte or EOF). Returns the byte count; 0 means EOF. Throws IoError
  /// on failure. For delimiter-framed protocols (the HTTP telemetry
  /// endpoint) where the message length is not known up front.
  std::size_t recv_some(void* data, std::size_t cap);
  /// Wait up to timeout_ms for the stream to become readable (0 = poll,
  /// negative = block). True when readable (including EOF).
  bool readable(int timeout_ms) const;

  /// Close immediately without lingering: pending unsent data is discarded
  /// and the peer sees a reset — how a killed worker process looks to the
  /// coordinator.
  void abort();
  void close();

 private:
  int fd_ = -1;
  std::string peer_;
};

/// A listening TCP socket bound to the loopback interface.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Bind and listen on 127.0.0.1:port (port 0 picks an ephemeral port,
  /// readable via port()). Throws IoError when the bind fails.
  static TcpListener bind(std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  std::uint16_t port() const { return port_; }

  /// Accept one connection, waiting up to timeout_ms (negative = block).
  /// nullopt on timeout; throws IoError on accept failure.
  std::optional<TcpConn> accept(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// poll(2) over many fds: returns a parallel vector, true where the fd is
/// readable (or at EOF). Waits up to timeout_ms (negative = block).
std::vector<bool> poll_readable(const std::vector<int>& fds, int timeout_ms);

}  // namespace mlsim::net
