// Self-pipe bridge from SIGTERM/SIGINT to the poll loops (docs/RESILIENCE.md
// "Crash-safe coordination").
//
// The classic problem: a signal can land on any thread at any instruction,
// so the handler may do nothing but async-signal-safe work — no locks, no
// allocation, no iostreams. The classic answer: the handler writes one byte
// to a non-blocking pipe whose read end sits in the event loop's poll set.
// The loop wakes, reads the byte, and runs the real drain logic in normal
// context.
//
// Escalation is handled *inside* the handler because a hung drain must stay
// interruptible: the first signal writes the pipe; a second signal calls
// _exit with the configured code — no flushing, no destructors, gone.
#pragma once

namespace mlsim::net {

/// Process-wide singleton (signal dispositions are process-wide state).
/// `install()` is idempotent; the first call fixes the force-exit code.
class SignalPipe {
 public:
  /// Install handlers for SIGTERM and SIGINT and return the singleton.
  /// `force_exit_code` is what a second signal _exit()s with.
  static SignalPipe& install(int force_exit_code);

  /// Read end of the pipe: add to a poll set, or check `signalled()`.
  /// Non-blocking — a reader can drain it with read() until EAGAIN.
  int fd() const { return read_fd_; }

  /// True once the first SIGTERM/SIGINT has landed.
  bool signalled() const;

  /// The last signal number delivered (0 before any).
  int last_signal() const;

  SignalPipe(const SignalPipe&) = delete;
  SignalPipe& operator=(const SignalPipe&) = delete;

 private:
  SignalPipe(int force_exit_code);
  int read_fd_ = -1;
};

}  // namespace mlsim::net
