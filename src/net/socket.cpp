#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"
#include "obs/metric_names.h"
#include "obs/obs.h"

namespace mlsim::net {

namespace {

std::string errno_text() { return std::strerror(errno); }

/// Loopback sockaddr for host:port. Only numeric IPv4 (and the literal
/// "localhost") is supported — the cluster is explicitly a same-host /
/// trusted-network transport, not a general resolver.
sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    throw IoError("not a numeric IPv4 host: " + host);
  }
  return addr;
}

}  // namespace

std::optional<HostPort> parse_host_port(const std::string& s) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) {
    return std::nullopt;
  }
  const std::string digits = s.substr(colon + 1);
  std::uint32_t port = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535) return std::nullopt;
  }
  if (port == 0) return std::nullopt;
  return HostPort{s.substr(0, colon), static_cast<std::uint16_t>(port)};
}

TcpConn::TcpConn(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {}

TcpConn::~TcpConn() { close(); }

TcpConn::TcpConn(TcpConn&& other) noexcept
    : fd_(other.fd_), peer_(std::move(other.peer_)) {
  other.fd_ = -1;
}

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    peer_ = std::move(other.peer_);
    other.fd_ = -1;
  }
  return *this;
}

TcpConn TcpConn::connect(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw IoError("socket(): " + errno_text());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = errno_text();
    ::close(fd);
    throw IoError("connect to " + host + ":" + std::to_string(port) + ": " +
                  why);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConn(fd, host + ":" + std::to_string(port));
}

void TcpConn::send_all(const void* data, std::size_t size) {
  check(valid(), "send on a closed connection");
  const char* p = static_cast<const char*>(data);
  std::size_t left = size;
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("send to " + peer_ + ": " + errno_text());
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  MLSIM_COUNTER_ADD(obs::names::kNetBytesSent, size);
}

bool TcpConn::recv_all(void* data, std::size_t size, bool eof_ok) {
  check(valid(), "recv on a closed connection");
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("recv from " + peer_ + ": " + errno_text());
    }
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      throw IoError("peer " + peer_ + " closed the connection mid-message (" +
                    std::to_string(got) + "/" + std::to_string(size) +
                    " bytes)");
    }
    got += static_cast<std::size_t>(n);
  }
  MLSIM_COUNTER_ADD(obs::names::kNetBytesReceived, size);
  return true;
}

std::size_t TcpConn::recv_some(void* data, std::size_t cap) {
  check(valid(), "recv on a closed connection");
  for (;;) {
    const ssize_t n = ::recv(fd_, data, cap, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("recv from " + peer_ + ": " + errno_text());
    }
    if (n > 0) {
      MLSIM_COUNTER_ADD(obs::names::kNetBytesReceived,
                        static_cast<std::uint64_t>(n));
    }
    return static_cast<std::size_t>(n);
  }
}

bool TcpConn::readable(int timeout_ms) const {
  check(valid(), "poll on a closed connection");
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw IoError("poll on " + peer_ + ": " + errno_text());
    }
    return r > 0;
  }
}

void TcpConn::abort() {
  if (fd_ < 0) return;
  // SO_LINGER with zero timeout turns close() into an immediate RST — the
  // peer sees the abrupt death a SIGKILLed worker would produce.
  linger lg{1, 0};
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  close();
}

void TcpConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

TcpListener TcpListener::bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw IoError("socket(): " + errno_text());
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr("127.0.0.1", port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = errno_text();
    ::close(fd);
    throw IoError("bind 127.0.0.1:" + std::to_string(port) + ": " + why);
  }
  if (::listen(fd, 64) != 0) {
    const std::string why = errno_text();
    ::close(fd);
    throw IoError("listen: " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string why = errno_text();
    ::close(fd);
    throw IoError("getsockname: " + why);
  }
  TcpListener l;
  l.fd_ = fd;
  l.port_ = ntohs(bound.sin_port);
  return l;
}

std::optional<TcpConn> TcpListener::accept(int timeout_ms) {
  check(valid(), "accept on a closed listener");
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw IoError("poll on listener: " + errno_text());
    }
    if (r == 0) return std::nullopt;
    break;
  }
  sockaddr_in peer{};
  socklen_t len = sizeof(peer);
  const int fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&peer), &len);
  if (fd < 0) throw IoError("accept: " + errno_text());
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  char buf[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &peer.sin_addr, buf, sizeof(buf));
  return TcpConn(fd, std::string(buf) + ":" + std::to_string(ntohs(peer.sin_port)));
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::vector<bool> poll_readable(const std::vector<int>& fds, int timeout_ms) {
  std::vector<pollfd> pfds;
  pfds.reserve(fds.size());
  for (const int fd : fds) pfds.push_back({fd, POLLIN, 0});
  for (;;) {
    const int r = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw IoError("poll: " + errno_text());
    }
    break;
  }
  std::vector<bool> out(fds.size(), false);
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    out[i] = (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
  }
  return out;
}

}  // namespace mlsim::net
