#include "net/frame.h"

#include "common/check.h"
#include "common/wire.h"
#include "obs/metric_names.h"
#include "obs/obs.h"

namespace mlsim::net {

void send_frame(TcpConn& conn, std::string_view payload) {
  const std::string enveloped = wire::seal(kFrameMagic, payload);
  conn.send_all(enveloped.data(), enveloped.size());
  MLSIM_COUNTER_ADD(obs::names::kNetFramesSent, 1);
}

bool recv_frame(TcpConn& conn, std::string& payload) {
  MLSIM_HIST_TIMER(obs::names::kNetFrameRecvNs);
  std::string enveloped(wire::kEnvelopeBytes, '\0');
  if (!conn.recv_all(enveloped.data(), wire::kEnvelopeBytes, /*eof_ok=*/true)) {
    return false;
  }
  // Pre-validate the header before trusting the size field with an
  // allocation; full checksum validation happens in unseal() below.
  wire::Reader head(enveloped.data(), wire::kEnvelopeBytes, conn.peer());
  const auto magic = head.pod<std::uint32_t>();
  const auto version = head.pod<std::uint32_t>();
  head.pod<std::uint64_t>();  // checksum, validated by unseal
  const auto payload_size = head.pod<std::uint64_t>();
  if (magic != kFrameMagic) {
    throw IoError("bad frame magic from " + conn.peer());
  }
  if (version != wire::kWireVersion) {
    throw IoError("unsupported frame version " + std::to_string(version) +
                  " from " + conn.peer());
  }
  if (payload_size > kMaxFramePayload) {
    throw IoError("oversized frame (" + std::to_string(payload_size) +
                  " bytes) from " + conn.peer());
  }
  enveloped.resize(wire::kEnvelopeBytes + payload_size);
  conn.recv_all(enveloped.data() + wire::kEnvelopeBytes, payload_size);
  try {
    payload = std::string(wire::unseal(kFrameMagic, enveloped, conn.peer()));
  } catch (const CheckError& e) {
    // On a socket, corruption is a transport fault: the peer (or the path)
    // mangled bytes in flight, so it maps to the transport error type.
    throw IoError(std::string("corrupt frame: ") + e.what());
  }
  MLSIM_COUNTER_ADD(obs::names::kNetFramesReceived, 1);
  return true;
}

}  // namespace mlsim::net
