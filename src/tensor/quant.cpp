#include "tensor/quant.h"

#include <algorithm>
#include <cmath>

#include "common/half.h"

namespace mlsim::tensor {

void quantize_half_inplace(std::vector<float>& values) {
  for (auto& v : values) v = quantize_to_half(v);
}

void prune_2to4_inplace(std::vector<float>& values) {
  const std::size_t n = values.size() / 4 * 4;
  for (std::size_t g = 0; g < n; g += 4) {
    // Find the two largest magnitudes in the group; zero the others.
    std::size_t best0 = g, best1 = g + 1;
    if (std::abs(values[best1]) > std::abs(values[best0])) std::swap(best0, best1);
    for (std::size_t i = g + 2; i < g + 4; ++i) {
      if (std::abs(values[i]) > std::abs(values[best0])) {
        best1 = best0;
        best0 = i;
      } else if (std::abs(values[i]) > std::abs(values[best1])) {
        best1 = i;
      }
    }
    for (std::size_t i = g; i < g + 4; ++i) {
      if (i != best0 && i != best1) values[i] = 0.0f;
    }
  }
}

double sparsity(const std::vector<float>& values) {
  if (values.empty()) return 0.0;
  std::size_t zeros = 0;
  for (float v : values) zeros += v == 0.0f;
  return static_cast<double>(zeros) / static_cast<double>(values.size());
}

bool satisfies_2to4(const std::vector<float>& values) {
  const std::size_t n = values.size() / 4 * 4;
  for (std::size_t g = 0; g < n; g += 4) {
    int zeros = 0;
    for (std::size_t i = g; i < g + 4; ++i) zeros += values[i] == 0.0f;
    if (zeros < 2) return false;
  }
  return true;
}

void quantize_model_half(SimNetModel& model) {
  for (auto& p : model.params()) quantize_half_inplace(*p.value);
}

void prune_model_2to4(SimNetModel& model) {
  prune_2to4_inplace(model.conv1().weight());
  prune_2to4_inplace(model.conv2().weight());
  prune_2to4_inplace(model.conv3().weight());
  prune_2to4_inplace(model.fc1().weight());
  prune_2to4_inplace(model.fc2().weight());
}

}  // namespace mlsim::tensor
