#include "tensor/model.h"

#include <cstring>
#include <fstream>

#include "common/check.h"

namespace mlsim::tensor {

SimNetModel::SimNetModel(const SimNetModelConfig& cfg, std::uint64_t seed) : cfg_(cfg) {
  Rng rng(seed);
  conv1_ = std::make_unique<Conv1D>(cfg.in_features, cfg.channels, cfg.kernel, rng);
  conv2_ = std::make_unique<Conv1D>(cfg.channels, cfg.channels, cfg.kernel, rng);
  conv3_ = std::make_unique<Conv1D>(cfg.channels, cfg.channels, cfg.kernel, rng);
  relu1_ = std::make_unique<ReLU>();
  relu2_ = std::make_unique<ReLU>();
  relu3_ = std::make_unique<ReLU>();
  relu4_ = std::make_unique<ReLU>();
  fc1_ = std::make_unique<Linear>(cfg.channels * cfg.window, cfg.hidden, rng);
  fc2_ = std::make_unique<Linear>(cfg.hidden, cfg.outputs, rng);
}

Tensor SimNetModel::forward(const Tensor& x) {
  check(x.rank() == 3 && x.dim(1) == cfg_.in_features && x.dim(2) == cfg_.window,
        "SimNetModel input must be (B, in_features, window)");
  return forward_tail(conv1_->forward(x));
}

Tensor SimNetModel::forward_tail(const Tensor& conv1_preact) {
  Tensor h = relu1_->forward(conv1_preact);
  h = relu2_->forward(conv2_->forward(h));
  h = relu3_->forward(conv3_->forward(h));
  const std::size_t B = h.dim(0);
  h = h.reshaped({B, cfg_.channels * cfg_.window});
  h = relu4_->forward(fc1_->forward(h));
  return fc2_->forward(h);
}

void SimNetModel::backward(const Tensor& grad_out) {
  Tensor g = fc2_->backward(grad_out);
  g = fc1_->backward(relu4_->backward(g));
  const std::size_t B = g.dim(0);
  g = g.reshaped({B, cfg_.channels, cfg_.window});
  g = conv3_->backward(relu3_->backward(g));
  g = conv2_->backward(relu2_->backward(g));
  conv1_->backward(relu1_->backward(g));
}

std::vector<Param> SimNetModel::params() {
  std::vector<Param> out;
  conv1_->collect_params(out);
  conv2_->collect_params(out);
  conv3_->collect_params(out);
  fc1_->collect_params(out);
  fc2_->collect_params(out);
  return out;
}

void SimNetModel::zero_grad() {
  conv1_->zero_grad();
  conv2_->zero_grad();
  conv3_->zero_grad();
  fc1_->zero_grad();
  fc2_->zero_grad();
}

std::size_t SimNetModel::flops_per_batch(std::size_t batch) const {
  return conv1_->flops(batch, cfg_.window) + conv2_->flops(batch, cfg_.window) +
         conv3_->flops(batch, cfg_.window) + fc1_->flops(batch) + fc2_->flops(batch);
}

namespace {
constexpr std::uint32_t kModelMagic = 0x4d4c4d44;  // "MLMD"

void write_vec(std::ofstream& os, const std::vector<float>& v) {
  const auto n = static_cast<std::uint64_t>(v.size());
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void read_vec(std::ifstream& is, std::vector<float>& v) {
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  check(static_cast<bool>(is), "model file truncated");
  check(n == v.size(), "model parameter size mismatch");
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(float)));
  check(static_cast<bool>(is), "model file truncated");
}
}  // namespace

void SimNetModel::save(const std::filesystem::path& path) const {
  std::ofstream os(path, std::ios::binary);
  check(os.is_open(), "cannot open model file for writing: " + path.string());
  os.write(reinterpret_cast<const char*>(&kModelMagic), sizeof(kModelMagic));
  os.write(reinterpret_cast<const char*>(&cfg_), sizeof(cfg_));
  write_vec(os, conv1_->weight());
  write_vec(os, conv1_->bias());
  write_vec(os, conv2_->weight());
  write_vec(os, conv2_->bias());
  write_vec(os, conv3_->weight());
  write_vec(os, conv3_->bias());
  write_vec(os, fc1_->weight());
  write_vec(os, fc1_->bias());
  write_vec(os, fc2_->weight());
  write_vec(os, fc2_->bias());
  check(static_cast<bool>(os), "model write failed");
}

SimNetModel SimNetModel::load(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  check(is.is_open(), "cannot open model file: " + path.string());
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  check(magic == kModelMagic, "bad model magic");
  SimNetModelConfig cfg;
  is.read(reinterpret_cast<char*>(&cfg), sizeof(cfg));
  check(static_cast<bool>(is), "model file truncated");
  SimNetModel m(cfg);
  read_vec(is, m.conv1_->weight());
  read_vec(is, m.conv1_->bias());
  read_vec(is, m.conv2_->weight());
  read_vec(is, m.conv2_->bias());
  read_vec(is, m.conv3_->weight());
  read_vec(is, m.conv3_->bias());
  read_vec(is, m.fc1_->weight());
  read_vec(is, m.fc1_->bias());
  read_vec(is, m.fc2_->weight());
  read_vec(is, m.fc2_->bias());
  return m;
}

}  // namespace mlsim::tensor
