// LSTM layer (batched, full BPTT) — the substrate for the Ithemal baseline,
// which predicts basic-block throughput with hierarchical sequential LSTMs
// (token layer -> instruction layer -> prediction layer).
#pragma once

#include <vector>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace mlsim::tensor {

/// Single-layer LSTM. forward_sequence consumes (B, T, input) and returns
/// all hidden states (B, T, hidden); the final hidden state is the common
/// summary embedding.
class Lstm final : public Layer {
 public:
  Lstm(std::size_t input_size, std::size_t hidden_size, Rng& rng);

  /// Layer interface: x = (B, T, input) -> (B, T, hidden).
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param>& out) override;
  void zero_grad() override;

  std::size_t input_size() const { return in_; }
  std::size_t hidden_size() const { return hid_; }

  /// Final hidden state of the last forward pass: (B, hidden).
  Tensor last_hidden() const;

  /// FLOPs for a (B, T) forward.
  std::size_t flops(std::size_t batch, std::size_t steps) const {
    return 2 * batch * steps * 4 * hid_ * (in_ + hid_);
  }

 private:
  std::size_t in_, hid_;
  // Gate weights packed [i, f, g, o]: W (4H, in), U (4H, hid), b (4H).
  std::vector<float> w_, u_, b_, gw_, gu_, gb_;

  // Caches for BPTT.
  Tensor x_;                       // (B, T, in)
  std::vector<std::vector<float>> gates_;  // per step: (B, 4H) post-activation
  std::vector<std::vector<float>> cells_;  // per step: (B, H) cell state
  std::vector<std::vector<float>> hiddens_;  // per step: (B, H)
};

}  // namespace mlsim::tensor
