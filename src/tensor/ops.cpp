#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mlsim::tensor {

namespace {
void kaiming_uniform(std::vector<float>& w, std::size_t fan_in, Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  for (auto& v : w) v = static_cast<float>(rng.uniform() * 2.0 - 1.0) * bound;
}
}  // namespace

// ---------------------------------------------------------------- Conv1D ---

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               Rng& rng)
    : c_in_(in_channels),
      c_out_(out_channels),
      k_(kernel),
      w_(out_channels * in_channels * kernel),
      b_(out_channels, 0.0f),
      gw_(w_.size(), 0.0f),
      gb_(b_.size(), 0.0f) {
  check(kernel % 2 == 1, "Conv1D uses odd kernels with 'same' padding");
  kaiming_uniform(w_, c_in_ * k_, rng);
}

Tensor Conv1D::forward(const Tensor& x) {
  check(x.rank() == 3 && x.dim(1) == c_in_, "Conv1D input must be (B, C_in, L)");
  cached_input_ = x;
  const std::size_t B = x.dim(0), L = x.dim(2);
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(k_ / 2);
  Tensor y({B, c_out_, L});

  const float* xd = x.data();
  float* yd = y.data();
  for (std::size_t b = 0; b < B; ++b) {
    const float* xb = xd + b * c_in_ * L;
    float* yb = yd + b * c_out_ * L;
    for (std::size_t co = 0; co < c_out_; ++co) {
      const float* wrow = w_.data() + co * c_in_ * k_;
      float* yrow = yb + co * L;
      for (std::size_t l = 0; l < L; ++l) yrow[l] = b_[co];
      for (std::size_t ci = 0; ci < c_in_; ++ci) {
        const float* xrow = xb + ci * L;
        const float* wk = wrow + ci * k_;
        for (std::size_t kk = 0; kk < k_; ++kk) {
          const float wv = wk[kk];
          if (wv == 0.0f) continue;  // 2:4-pruned weights skip work
          const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(kk) - pad;
          const std::size_t lo = off < 0 ? static_cast<std::size_t>(-off) : 0;
          const std::size_t hi =
              off > 0 ? L - static_cast<std::size_t>(off) : L;
          for (std::size_t l = lo; l < hi; ++l) {
            yrow[l] += wv * xrow[static_cast<std::size_t>(
                                static_cast<std::ptrdiff_t>(l) + off)];
          }
        }
      }
    }
  }
  return y;
}

Tensor Conv1D::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const std::size_t B = x.dim(0), L = x.dim(2);
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(k_ / 2);
  Tensor gx({B, c_in_, L});

  const float* xd = x.data();
  const float* gyd = grad_out.data();
  float* gxd = gx.data();
  for (std::size_t b = 0; b < B; ++b) {
    const float* xb = xd + b * c_in_ * L;
    const float* gyb = gyd + b * c_out_ * L;
    float* gxb = gxd + b * c_in_ * L;
    for (std::size_t co = 0; co < c_out_; ++co) {
      const float* gyrow = gyb + co * L;
      float* gwrow = gw_.data() + co * c_in_ * k_;
      float acc_b = 0.0f;
      for (std::size_t l = 0; l < L; ++l) acc_b += gyrow[l];
      gb_[co] += acc_b;
      for (std::size_t ci = 0; ci < c_in_; ++ci) {
        const float* xrow = xb + ci * L;
        float* gxrow = gxb + ci * L;
        const float* wk = w_.data() + (co * c_in_ + ci) * k_;
        float* gwk = gwrow + ci * k_;
        for (std::size_t kk = 0; kk < k_; ++kk) {
          const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(kk) - pad;
          const std::size_t lo = off < 0 ? static_cast<std::size_t>(-off) : 0;
          const std::size_t hi = off > 0 ? L - static_cast<std::size_t>(off) : L;
          float acc_w = 0.0f;
          const float wv = wk[kk];
          for (std::size_t l = lo; l < hi; ++l) {
            const std::size_t xi =
                static_cast<std::size_t>(static_cast<std::ptrdiff_t>(l) + off);
            acc_w += gyrow[l] * xrow[xi];
            gxrow[xi] += gyrow[l] * wv;
          }
          gwk[kk] += acc_w;
        }
      }
    }
  }
  return gx;
}

void Conv1D::collect_params(std::vector<Param>& out) {
  out.push_back({&w_, &gw_});
  out.push_back({&b_, &gb_});
}

void Conv1D::zero_grad() {
  std::fill(gw_.begin(), gw_.end(), 0.0f);
  std::fill(gb_.begin(), gb_.end(), 0.0f);
}

std::size_t Conv1D::flops(std::size_t batch, std::size_t length) const {
  return 2 * batch * c_out_ * c_in_ * k_ * length;
}

// ---------------------------------------------------------------- Linear ---

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : n_in_(in_features),
      n_out_(out_features),
      w_(out_features * in_features),
      b_(out_features, 0.0f),
      gw_(w_.size(), 0.0f),
      gb_(b_.size(), 0.0f) {
  kaiming_uniform(w_, n_in_, rng);
}

Tensor Linear::forward(const Tensor& x) {
  check(x.rank() == 2 && x.dim(1) == n_in_, "Linear input must be (B, N_in)");
  cached_input_ = x;
  const std::size_t B = x.dim(0);
  Tensor y({B, n_out_});
  const float* xd = x.data();
  float* yd = y.data();
  for (std::size_t b = 0; b < B; ++b) {
    const float* xb = xd + b * n_in_;
    float* yb = yd + b * n_out_;
    for (std::size_t o = 0; o < n_out_; ++o) {
      const float* wrow = w_.data() + o * n_in_;
      float acc = b_[o];
      for (std::size_t i = 0; i < n_in_; ++i) acc += wrow[i] * xb[i];
      yb[o] = acc;
    }
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const std::size_t B = x.dim(0);
  Tensor gx({B, n_in_});
  const float* xd = x.data();
  const float* gyd = grad_out.data();
  float* gxd = gx.data();
  for (std::size_t b = 0; b < B; ++b) {
    const float* xb = xd + b * n_in_;
    const float* gyb = gyd + b * n_out_;
    float* gxb = gxd + b * n_in_;
    for (std::size_t o = 0; o < n_out_; ++o) {
      const float g = gyb[o];
      if (g == 0.0f) continue;
      gb_[o] += g;
      float* gwrow = gw_.data() + o * n_in_;
      const float* wrow = w_.data() + o * n_in_;
      for (std::size_t i = 0; i < n_in_; ++i) {
        gwrow[i] += g * xb[i];
        gxb[i] += g * wrow[i];
      }
    }
  }
  return gx;
}

void Linear::collect_params(std::vector<Param>& out) {
  out.push_back({&w_, &gw_});
  out.push_back({&b_, &gb_});
}

void Linear::zero_grad() {
  std::fill(gw_.begin(), gw_.end(), 0.0f);
  std::fill(gb_.begin(), gb_.end(), 0.0f);
}

// ------------------------------------------------------------------ ReLU ---

Tensor ReLU::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor y = x;
  for (auto& v : y.flat()) v = v > 0.0f ? v : 0.0f;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor gx = grad_out;
  auto gxf = gx.flat();
  auto xf = cached_input_.flat();
  for (std::size_t i = 0; i < gxf.size(); ++i) {
    if (xf[i] <= 0.0f) gxf[i] = 0.0f;
  }
  return gx;
}

// ------------------------------------------------------------------ Loss ---

float mse_loss(const Tensor& pred, const Tensor& target, Tensor& grad) {
  check(pred.numel() == target.numel(), "loss shape mismatch");
  grad = pred;
  const float scale = 2.0f / static_cast<float>(pred.numel());
  float loss = 0.0f;
  auto gf = grad.flat();
  auto pf = pred.flat();
  auto tf = target.flat();
  for (std::size_t i = 0; i < pf.size(); ++i) {
    const float d = pf[i] - tf[i];
    loss += d * d;
    gf[i] = d * scale;
  }
  return loss / static_cast<float>(pred.numel());
}

}  // namespace mlsim::tensor
