// Adam optimiser over registered parameter blocks.
#pragma once

#include <vector>

#include "tensor/ops.h"

namespace mlsim::tensor {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
  float grad_clip = 0.0f;  // 0 = disabled; otherwise clip by global L2 norm
};

class Adam {
 public:
  Adam(std::vector<Param> params, const AdamConfig& cfg = {});

  /// Apply one update using the gradients currently stored in each Param.
  void step();

  std::size_t num_parameters() const;

 private:
  std::vector<Param> params_;
  AdamConfig cfg_;
  std::vector<std::vector<float>> m_, v_;
  std::int64_t t_ = 0;
};

}  // namespace mlsim::tensor
