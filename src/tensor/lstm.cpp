#include "tensor/lstm.h"

#include <cmath>

#include "common/check.h"

namespace mlsim::tensor {

namespace {
inline float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size, Rng& rng)
    : in_(input_size),
      hid_(hidden_size),
      w_(4 * hidden_size * input_size),
      u_(4 * hidden_size * hidden_size),
      b_(4 * hidden_size, 0.0f),
      gw_(w_.size(), 0.0f),
      gu_(u_.size(), 0.0f),
      gb_(b_.size(), 0.0f) {
  const float bound_w = std::sqrt(1.0f / static_cast<float>(input_size));
  const float bound_u = std::sqrt(1.0f / static_cast<float>(hidden_size));
  for (auto& v : w_) v = static_cast<float>(rng.uniform() * 2.0 - 1.0) * bound_w;
  for (auto& v : u_) v = static_cast<float>(rng.uniform() * 2.0 - 1.0) * bound_u;
  // Forget-gate bias of 1 stabilises training.
  for (std::size_t h = hid_; h < 2 * hid_; ++h) b_[h] = 1.0f;
}

Tensor Lstm::forward(const Tensor& x) {
  check(x.rank() == 3 && x.dim(2) == in_, "Lstm input must be (B, T, input)");
  x_ = x;
  const std::size_t B = x.dim(0), T = x.dim(1);
  gates_.assign(T, std::vector<float>(B * 4 * hid_, 0.0f));
  cells_.assign(T, std::vector<float>(B * hid_, 0.0f));
  hiddens_.assign(T, std::vector<float>(B * hid_, 0.0f));

  Tensor out({B, T, hid_});
  std::vector<float> h_prev(B * hid_, 0.0f), c_prev(B * hid_, 0.0f);

  for (std::size_t t = 0; t < T; ++t) {
    auto& gate = gates_[t];
    auto& cell = cells_[t];
    auto& hidden = hiddens_[t];
    for (std::size_t bi = 0; bi < B; ++bi) {
      const float* xt = x.data() + (bi * T + t) * in_;
      const float* hp = h_prev.data() + bi * hid_;
      const float* cp = c_prev.data() + bi * hid_;
      float* g = gate.data() + bi * 4 * hid_;
      float* c = cell.data() + bi * hid_;
      float* h = hidden.data() + bi * hid_;
      // Pre-activations for all 4 gates.
      for (std::size_t r = 0; r < 4 * hid_; ++r) {
        const float* wr = w_.data() + r * in_;
        const float* ur = u_.data() + r * hid_;
        float acc = b_[r];
        for (std::size_t i = 0; i < in_; ++i) acc += wr[i] * xt[i];
        for (std::size_t i = 0; i < hid_; ++i) acc += ur[i] * hp[i];
        g[r] = acc;
      }
      for (std::size_t k = 0; k < hid_; ++k) {
        const float ig = sigmoidf(g[k]);
        const float fg = sigmoidf(g[hid_ + k]);
        const float gg = std::tanh(g[2 * hid_ + k]);
        const float og = sigmoidf(g[3 * hid_ + k]);
        g[k] = ig;
        g[hid_ + k] = fg;
        g[2 * hid_ + k] = gg;
        g[3 * hid_ + k] = og;
        c[k] = fg * cp[k] + ig * gg;
        h[k] = og * std::tanh(c[k]);
      }
      float* o = out.data() + (bi * T + t) * hid_;
      for (std::size_t k = 0; k < hid_; ++k) o[k] = h[k];
    }
    h_prev = hidden;
    c_prev = cell;
  }
  return out;
}

Tensor Lstm::backward(const Tensor& grad_out) {
  const std::size_t B = x_.dim(0), T = x_.dim(1);
  Tensor gx({B, T, in_});
  std::vector<float> dh_next(B * hid_, 0.0f), dc_next(B * hid_, 0.0f);

  for (std::size_t t = T; t-- > 0;) {
    const auto& gate = gates_[t];
    const auto& cell = cells_[t];
    const std::vector<float>* c_prev = t > 0 ? &cells_[t - 1] : nullptr;
    const std::vector<float>* h_prev = t > 0 ? &hiddens_[t - 1] : nullptr;

    std::vector<float> dh_prev(B * hid_, 0.0f), dc_prev(B * hid_, 0.0f);
    for (std::size_t bi = 0; bi < B; ++bi) {
      const float* g = gate.data() + bi * 4 * hid_;
      const float* c = cell.data() + bi * hid_;
      const float* go = grad_out.data() + (bi * T + t) * hid_;
      float* dhn = dh_next.data() + bi * hid_;
      float* dcn = dc_next.data() + bi * hid_;
      const float* xt = x_.data() + (bi * T + t) * in_;

      std::vector<float> dgate(4 * hid_);
      for (std::size_t k = 0; k < hid_; ++k) {
        const float ig = g[k], fg = g[hid_ + k], gg = g[2 * hid_ + k],
                    og = g[3 * hid_ + k];
        const float tc = std::tanh(c[k]);
        const float dh = go[k] + dhn[k];
        const float dc = dh * og * (1.0f - tc * tc) + dcn[k];
        const float cp = c_prev ? (*c_prev)[bi * hid_ + k] : 0.0f;
        dgate[k] = dc * gg * ig * (1.0f - ig);                 // d pre_i
        dgate[hid_ + k] = dc * cp * fg * (1.0f - fg);          // d pre_f
        dgate[2 * hid_ + k] = dc * ig * (1.0f - gg * gg);      // d pre_g
        dgate[3 * hid_ + k] = dh * tc * og * (1.0f - og);      // d pre_o
        dc_prev[bi * hid_ + k] = dc * fg;
      }
      float* gxt = gx.data() + (bi * T + t) * in_;
      const float* hp = h_prev ? h_prev->data() + bi * hid_ : nullptr;
      for (std::size_t r = 0; r < 4 * hid_; ++r) {
        const float dg = dgate[r];
        if (dg == 0.0f) continue;
        gb_[r] += dg;
        float* gwr = gw_.data() + r * in_;
        const float* wr = w_.data() + r * in_;
        for (std::size_t i = 0; i < in_; ++i) {
          gwr[i] += dg * xt[i];
          gxt[i] += dg * wr[i];
        }
        float* gur = gu_.data() + r * hid_;
        const float* ur = u_.data() + r * hid_;
        float* dhp = dh_prev.data() + bi * hid_;
        for (std::size_t i = 0; i < hid_; ++i) {
          if (hp) gur[i] += dg * hp[i];
          dhp[i] += dg * ur[i];
        }
      }
    }
    dh_next = std::move(dh_prev);
    dc_next = std::move(dc_prev);
  }
  return gx;
}

void Lstm::collect_params(std::vector<Param>& out) {
  out.push_back({&w_, &gw_});
  out.push_back({&u_, &gu_});
  out.push_back({&b_, &gb_});
}

void Lstm::zero_grad() {
  std::fill(gw_.begin(), gw_.end(), 0.0f);
  std::fill(gu_.begin(), gu_.end(), 0.0f);
  std::fill(gb_.begin(), gb_.end(), 0.0f);
}

Tensor Lstm::last_hidden() const {
  check(!hiddens_.empty(), "last_hidden before forward");
  const std::size_t B = x_.dim(0);
  Tensor h({B, hid_});
  const auto& last = hiddens_.back();
  std::copy(last.begin(), last.end(), h.data());
  return h;
}

}  // namespace mlsim::tensor
