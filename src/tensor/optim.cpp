#include "tensor/optim.h"

#include <cmath>

#include "common/check.h"

namespace mlsim::tensor {

Adam::Adam(std::vector<Param> params, const AdamConfig& cfg)
    : params_(std::move(params)), cfg_(cfg) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    check(p.value != nullptr && p.grad != nullptr, "null parameter block");
    check(p.value->size() == p.grad->size(), "param/grad size mismatch");
    m_.emplace_back(p.value->size(), 0.0f);
    v_.emplace_back(p.value->size(), 0.0f);
  }
}

std::size_t Adam::num_parameters() const {
  std::size_t n = 0;
  for (const auto& p : params_) n += p.value->size();
  return n;
}

void Adam::step() {
  ++t_;
  float clip_scale = 1.0f;
  if (cfg_.grad_clip > 0.0f) {
    double norm2 = 0.0;
    for (const auto& p : params_) {
      for (float g : *p.grad) norm2 += static_cast<double>(g) * g;
    }
    const double norm = std::sqrt(norm2);
    if (norm > cfg_.grad_clip) {
      clip_scale = static_cast<float>(cfg_.grad_clip / norm);
    }
  }
  const float bc1 = 1.0f - std::pow(cfg_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(cfg_.beta2, static_cast<float>(t_));
  for (std::size_t p = 0; p < params_.size(); ++p) {
    auto& w = *params_[p].value;
    auto& g = *params_[p].grad;
    auto& m = m_[p];
    auto& v = v_[p];
    for (std::size_t i = 0; i < w.size(); ++i) {
      float gi = g[i] * clip_scale + cfg_.weight_decay * w[i];
      m[i] = cfg_.beta1 * m[i] + (1.0f - cfg_.beta1) * gi;
      v[i] = cfg_.beta2 * v[i] + (1.0f - cfg_.beta2) * gi * gi;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.eps);
    }
  }
}

}  // namespace mlsim::tensor
