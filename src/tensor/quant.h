// Model compression used by the paper's inference optimisations (§IV-B):
//   - half precision: weights/activations stored in fp16 (we emulate the
//     numerics to measure the accuracy cost; the speed benefit is part of
//     the device cost model);
//   - 2:4 structured sparsity: among every four consecutive weights the two
//     smallest magnitudes are pruned to zero (the pattern Ampere sparse
//     Tensor Cores accelerate ~2x).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/model.h"

namespace mlsim::tensor {

/// Round every element through IEEE fp16 (in place).
void quantize_half_inplace(std::vector<float>& values);

/// Apply 2:4 structured pruning in place: for each aligned group of four,
/// zero the two entries with the smallest |value|.
void prune_2to4_inplace(std::vector<float>& values);

/// Fraction of zero entries (post-pruning this is >= 0.5 for aligned sizes).
double sparsity(const std::vector<float>& values);

/// True if every aligned group of four has at least two zeros.
bool satisfies_2to4(const std::vector<float>& values);

/// Quantise all weights and biases of a model to half precision.
void quantize_model_half(SimNetModel& model);

/// 2:4-prune all conv/fc weight matrices of a model (biases untouched).
void prune_model_2to4(SimNetModel& model);

}  // namespace mlsim::tensor
