// SimNet "3C+2F" latency-prediction model: three Conv1D layers followed by
// two fully-connected layers. Input is a (batch, features, window) tensor —
// window = context_length + 1 instructions, the first position being the
// to-be-predicted instruction. Output is (batch, 3): the fetch / execute /
// store latencies (trained in log1p space for the heavy-tailed targets).
#pragma once

#include <filesystem>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace mlsim::tensor {

struct SimNetModelConfig {
  std::size_t in_features = 50;
  std::size_t window = 112;  // context_length + 1 (paper: 111 + 1)
  std::size_t channels = 64; // first-layer channels (paper: 64)
  std::size_t hidden = 128;
  std::size_t kernel = 3;
  std::size_t outputs = 3;

  bool operator==(const SimNetModelConfig&) const = default;
};

class SimNetModel {
 public:
  explicit SimNetModel(const SimNetModelConfig& cfg, std::uint64_t seed = 42);

  const SimNetModelConfig& config() const { return cfg_; }

  /// Full forward pass: (B, F, W) -> (B, outputs).
  Tensor forward(const Tensor& x);

  /// Tail of the network given the *pre-activation* output of conv1
  /// (B, channels, W). Used to splice in the custom convolution layer that
  /// replaces conv1 on the device (paper §IV-A/§IV-B).
  Tensor forward_tail(const Tensor& conv1_preact);

  /// Backward pass for training; `grad_out` is d(loss)/d(output).
  void backward(const Tensor& grad_out);

  std::vector<Param> params();
  void zero_grad();

  Conv1D& conv1() { return *conv1_; }
  Conv1D& conv2() { return *conv2_; }
  Conv1D& conv3() { return *conv3_; }
  Linear& fc1() { return *fc1_; }
  Linear& fc2() { return *fc2_; }
  const Conv1D& conv1() const { return *conv1_; }
  const Conv1D& conv2() const { return *conv2_; }
  const Conv1D& conv3() const { return *conv3_; }
  const Linear& fc1() const { return *fc1_; }
  const Linear& fc2() const { return *fc2_; }

  /// FLOPs of one forward pass for a batch of `batch` windows.
  std::size_t flops_per_batch(std::size_t batch) const;

  void save(const std::filesystem::path& path) const;
  static SimNetModel load(const std::filesystem::path& path);

 private:
  SimNetModelConfig cfg_;
  std::unique_ptr<Conv1D> conv1_, conv2_, conv3_;
  std::unique_ptr<ReLU> relu1_, relu2_, relu3_, relu4_;
  std::unique_ptr<Linear> fc1_, fc2_;
};

}  // namespace mlsim::tensor
