// Trainable layers: Conv1D ("same" zero padding), Linear, ReLU.
//
// Hand-written forward/backward (no autograd): each layer caches its last
// input and exposes parameter/gradient buffers to the optimiser. Layers
// operate on batched tensors:
//   Conv1D : (B, C_in, L)  -> (B, C_out, L)
//   Linear : (B, N_in)     -> (B, N_out)
//   ReLU   : elementwise.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace mlsim::tensor {

/// Parameter block registered with the optimiser.
struct Param {
  std::vector<float>* value = nullptr;
  std::vector<float>* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;
  virtual Tensor forward(const Tensor& x) = 0;
  virtual Tensor backward(const Tensor& grad_out) = 0;
  virtual void collect_params(std::vector<Param>& /*out*/) {}
  virtual void zero_grad() {}
};

class Conv1D final : public Layer {
 public:
  /// Kaiming-uniform initialisation from `rng`.
  Conv1D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param>& out) override;
  void zero_grad() override;

  std::size_t in_channels() const { return c_in_; }
  std::size_t out_channels() const { return c_out_; }
  std::size_t kernel() const { return k_; }

  /// weight layout: (C_out, C_in, K) row-major; bias: (C_out).
  std::vector<float>& weight() { return w_; }
  const std::vector<float>& weight() const { return w_; }
  std::vector<float>& bias() { return b_; }
  const std::vector<float>& bias() const { return b_; }

  /// FLOPs for one forward pass over a batch of `batch` windows of length L.
  std::size_t flops(std::size_t batch, std::size_t length) const;

 private:
  std::size_t c_in_, c_out_, k_;
  std::vector<float> w_, b_, gw_, gb_;
  Tensor cached_input_;
};

class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param>& out) override;
  void zero_grad() override;

  std::size_t in_features() const { return n_in_; }
  std::size_t out_features() const { return n_out_; }
  std::vector<float>& weight() { return w_; }  // (N_out, N_in)
  const std::vector<float>& weight() const { return w_; }
  std::vector<float>& bias() { return b_; }
  const std::vector<float>& bias() const { return b_; }

  std::size_t flops(std::size_t batch) const { return 2 * batch * n_in_ * n_out_; }

 private:
  std::size_t n_in_, n_out_;
  std::vector<float> w_, b_, gw_, gb_;
  Tensor cached_input_;
};

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_input_;
};

/// Mean-squared-error loss; returns loss and writes d(loss)/d(pred) to grad.
float mse_loss(const Tensor& pred, const Tensor& target, Tensor& grad);

}  // namespace mlsim::tensor
