// Minimal dense float tensor (row-major, up to 4 dimensions).
//
// This is the substrate under the SimNet 3C+2F CNN and the Ithemal LSTM —
// the paper's models run on PyTorch/TensorRT, which are unavailable here, so
// training and inference are implemented from scratch. The layout choices
// mirror the paper's discussion: inference inputs are (batch, channels,
// length) with channels = instruction features and length = context window.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace mlsim::tensor {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape);

  static Tensor zeros(std::initializer_list<std::size_t> shape);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const;
  std::size_t numel() const { return data_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  float& at(std::size_t i) { return data_[i]; }
  float at(std::size_t i) const { return data_[i]; }

  // Indexed accessors for the common ranks (no stride arithmetic at call
  // sites). Bounds are checked in debug-style via check() only on the slow
  // path constructors; hot loops index flat().
  float& operator()(std::size_t i, std::size_t j) {
    return data_[i * shape_[1] + j];
  }
  float operator()(std::size_t i, std::size_t j) const {
    return data_[i * shape_[1] + j];
  }
  float& operator()(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float operator()(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  void fill(float v);
  void resize(std::vector<std::size_t> shape);

  /// Reshape without copying; total element count must match.
  Tensor reshaped(std::vector<std::size_t> shape) const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace mlsim::tensor
