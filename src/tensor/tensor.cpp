#include "tensor/tensor.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace mlsim::tensor {

namespace {
std::size_t product(const std::vector<std::size_t>& shape) {
  return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                         std::multiplies<>());
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(product(shape_), 0.0f) {
  check(!shape_.empty() && shape_.size() <= 4, "tensor rank must be 1..4");
}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

Tensor Tensor::zeros(std::initializer_list<std::size_t> shape) {
  return Tensor(shape);
}

std::size_t Tensor::dim(std::size_t i) const {
  check_index(i, shape_.size(), "tensor dim");
  return shape_[i];
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::resize(std::vector<std::size_t> shape) {
  shape_ = std::move(shape);
  data_.assign(product(shape_), 0.0f);
}

Tensor Tensor::reshaped(std::vector<std::size_t> shape) const {
  check(product(shape) == numel(), "reshape must preserve element count");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  return t;
}

}  // namespace mlsim::tensor
