// Small statistics helpers used across evaluation code: online accumulators,
// error metrics (the paper's CPI error definition), and simple summaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace mlsim {

/// Welford online mean/variance with min/max tracking.
class RunningStats {
 public:
  /// Complete accumulator state, exposed so long-running consumers (e.g. the
  /// parallel engine's checkpoint) can serialize and later restore() an
  /// accumulator bit-identically mid-stream.
  struct State {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  RunningStats() = default;

  State state() const {
    return {static_cast<std::uint64_t>(n_), mean_, m2_, min_, max_};
  }
  static RunningStats restore(const State& s) {
    RunningStats r;
    r.n_ = static_cast<std::size_t>(s.n);
    r.mean_ = s.mean;
    r.m2_ = s.m2;
    r.min_ = s.min;
    r.max_ = s.max;
    return r;
  }

  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Paper §V-B error definition: (reference - value) / reference * 100.
/// Positive means `value` underestimates the reference.
double signed_percent_error(double reference, double value);

/// |reference - value| / reference * 100.
double absolute_percent_error(double reference, double value);

/// Mean absolute percent error over paired series (sizes must match).
double mean_absolute_percent_error(const std::vector<double>& reference,
                                   const std::vector<double>& value);

/// Percentile of a copy of the data (p in [0, 100], linear interpolation).
/// Throws CheckError for empty data or p outside [0, 100]; p = 100 returns
/// the maximum exactly (no out-of-range interpolation index).
double percentile(std::vector<double> data, double p);

/// Quantile of a fixed-bucket histogram: `upper_edges` are ascending bucket
/// upper bounds (the last bucket also absorbs overflow), `counts[i]` is the
/// number of samples in bucket i. Linearly interpolates within the target
/// bucket, mirroring `percentile`'s convention. Returns NaN when the
/// histogram is empty; p is clamped to [0, 100]. Sizes must match.
double quantile_from_buckets(const std::vector<double>& upper_edges,
                             const std::vector<std::uint64_t>& counts,
                             double p);

}  // namespace mlsim
