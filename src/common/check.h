// Lightweight runtime checking. We prefer throwing over aborting so that
// library consumers (and tests) can observe contract violations.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mlsim {

/// Thrown when a library precondition or internal invariant is violated.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown for file-system level failures (cannot open, short write, rename
/// failed). Distinct from CheckError, which signals corrupt *content* or a
/// violated invariant — drivers map the two to different exit codes.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a graceful drain (SIGTERM/SIGINT) stops a run before it
/// completes. Not a failure: in-flight work was allowed to finish, progress
/// was journaled for `--resume`, and drivers map this to its own exit code
/// so supervisors can tell "drained on request" from every error class.
class DrainError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Verify `cond`; throw CheckError annotated with the call site otherwise.
inline void check(bool cond, std::string_view msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) [[unlikely]] {
    std::ostringstream os;
    os << loc.file_name() << ':' << loc.line() << " check failed: " << msg;
    throw CheckError(os.str());
  }
}

/// Verify `lo <= v < hi` for index-style arguments.
inline void check_index(std::size_t v, std::size_t hi, std::string_view what,
                        std::source_location loc = std::source_location::current()) {
  if (v >= hi) [[unlikely]] {
    std::ostringstream os;
    os << loc.file_name() << ':' << loc.line() << " index check failed: " << what
       << " = " << v << " must be < " << hi;
    throw CheckError(os.str());
  }
}

}  // namespace mlsim
