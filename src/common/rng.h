// Deterministic, fast pseudo-random number generation.
//
// Every stochastic component in the library (workload generators, weight
// initialisation, sampling) takes an explicit seed so simulations are
// reproducible bit-for-bit across runs and thread counts.
#pragma once

#include <cstdint>
#include <vector>

namespace mlsim {

/// SplitMix64: used to expand a single user seed into independent streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality generator used throughout the library.
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Standard normal via Box-Muller (no caching; deterministic).
  double normal();

  /// Geometric-like: returns true with probability p.
  bool bernoulli(double p);

  /// Sample an index from a discrete distribution given cumulative weights.
  /// `cumulative` must be non-empty and non-decreasing with positive back().
  std::size_t sample_cdf(const std::vector<double>& cumulative);

  /// Derive an independent child stream (e.g. per-thread, per-benchmark).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Build a cumulative distribution from (possibly unnormalised) weights.
std::vector<double> make_cdf(const std::vector<double>& weights);

}  // namespace mlsim
