#include "common/artifacts.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace mlsim {

namespace {

std::filesystem::path sidecar_path(const std::string& name) {
  return artifact_path(name + ".sum");
}

/// Read a sidecar checksum; false if absent or unparseable.
bool read_sidecar(const std::filesystem::path& path, std::uint64_t& sum) {
  std::ifstream is(path);
  if (!is.is_open()) return false;
  std::string hex;
  is >> hex;
  if (hex.empty()) return false;
  char* end = nullptr;
  sum = std::strtoull(hex.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

// Unique per (process, call) so concurrent bench binaries sharing the cache
// never clobber each other's in-flight writes.
std::filesystem::path temp_sibling(const std::filesystem::path& path) {
  static std::atomic<std::uint64_t> counter{0};
  return path.parent_path() /
         (path.filename().string() + ".tmp." + std::to_string(::getpid()) +
          "." + std::to_string(counter.fetch_add(1)));
}

}  // namespace

std::filesystem::path artifact_dir() {
  std::filesystem::path dir = "mlsim-artifacts";
  if (const char* env = std::getenv("MLSIM_ARTIFACT_DIR"); env != nullptr && *env) {
    dir = env;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  return dir;
}

std::filesystem::path artifact_path(const std::string& name) {
  return artifact_dir() / name;
}

bool artifact_exists(const std::string& name) {
  std::error_code ec;
  const auto p = artifact_path(name);
  if (!std::filesystem::exists(p, ec) ||
      std::filesystem::file_size(p, ec) == 0 || ec) {
    return false;
  }
  return artifact_checksum_ok(name);
}

bool artifact_checksum_ok(const std::string& name) {
  std::uint64_t recorded = 0;
  if (!read_sidecar(sidecar_path(name), recorded)) return true;  // no sidecar
  try {
    return file_checksum(artifact_path(name)) == recorded;
  } catch (const IoError&) {
    return false;
  }
}

void artifact_commit(
    const std::string& name,
    const std::function<void(const std::filesystem::path&)>& write) {
  const auto final_path = artifact_path(name);
  const auto tmp = temp_sibling(final_path);
  try {
    write(tmp);
    const std::uint64_t sum = file_checksum(tmp);
    std::error_code ec;
    std::filesystem::rename(tmp, final_path, ec);
    if (ec) {
      throw IoError("cannot publish artifact " + final_path.string() + ": " +
                    ec.message());
    }
    std::ostringstream hex;
    hex << std::hex << sum << '\n';
    write_file_atomic(sidecar_path(name), hex.str());
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
}

std::uint64_t fnv1a64(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t file_checksum(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    throw IoError("cannot open for checksum: " + path.string());
  }
  std::uint64_t h = 0xcbf29ce484222325ull;
  std::vector<char> buf(1 << 16);
  while (is) {
    is.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    const auto got = is.gcount();
    for (std::streamsize i = 0; i < got; ++i) {
      h ^= static_cast<unsigned char>(buf[static_cast<std::size_t>(i)]);
      h *= 0x100000001b3ull;
    }
  }
  if (is.bad()) throw IoError("read failed during checksum: " + path.string());
  return h;
}

void write_file_atomic(const std::filesystem::path& path,
                       std::string_view bytes) {
  const auto tmp = temp_sibling(path);
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os.is_open()) {
      throw IoError("cannot open temp file for writing: " + tmp.string());
    }
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) {
      os.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw IoError("short write to " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ec2;
    std::filesystem::remove(tmp, ec2);
    throw IoError("cannot rename " + tmp.string() + " -> " + path.string() +
                  ": " + ec.message());
  }
}

}  // namespace mlsim
