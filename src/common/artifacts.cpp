#include "common/artifacts.h"

#include <cstdlib>

namespace mlsim {

std::filesystem::path artifact_dir() {
  std::filesystem::path dir = "mlsim-artifacts";
  if (const char* env = std::getenv("MLSIM_ARTIFACT_DIR"); env != nullptr && *env) {
    dir = env;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  return dir;
}

std::filesystem::path artifact_path(const std::string& name) {
  return artifact_dir() / name;
}

bool artifact_exists(const std::string& name) {
  std::error_code ec;
  const auto p = artifact_path(name);
  return std::filesystem::exists(p, ec) && std::filesystem::file_size(p, ec) > 0;
}

}  // namespace mlsim
