#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace mlsim {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  check(bound > 0, "next_below bound must be positive");
  // Lemire's multiply-shift rejection-free mapping is fine here: bias is
  // negligible (bound << 2^64) for simulation workload synthesis.
  const unsigned __int128 m =
      static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  check(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : next_below(span));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::normal() {
  // Box-Muller; avoid u1 == 0.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::sample_cdf(const std::vector<double>& cumulative) {
  check(!cumulative.empty(), "sample_cdf requires non-empty cdf");
  const double total = cumulative.back();
  check(total > 0.0, "sample_cdf requires positive total weight");
  const double x = uniform() * total;
  std::size_t lo = 0, hi = cumulative.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cumulative[mid] <= x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Rng Rng::split() { return Rng(next()); }

std::vector<double> make_cdf(const std::vector<double>& weights) {
  std::vector<double> cdf;
  cdf.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    check(w >= 0.0, "make_cdf weights must be non-negative");
    acc += w;
    cdf.push_back(acc);
  }
  return cdf;
}

}  // namespace mlsim
