#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace mlsim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  check(!headers_.empty(), "table must have at least one column");
}

Table& Table::add_row(std::vector<Cell> cells) {
  check(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::render(const Cell& c) const {
  std::ostringstream os;
  if (const auto* s = std::get_if<std::string>(&c)) {
    os << *s;
  } else if (const auto* d = std::get_if<double>(&c)) {
    os << std::fixed << std::setprecision(precision_) << *d;
  } else {
    os << std::get<std::int64_t>(c);
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(render(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto line = [&] {
    for (auto w : widths) os << '+' << std::string(w + 2, '-');
    os << "+\n";
  };
  line();
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left << headers_[c]
       << " |";
  }
  os << '\n';
  line();
  for (const auto& r : rendered) {
    os << '|';
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left << r[c] << " |";
    }
    os << '\n';
  }
  line();
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << headers_[c];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << render(row[c]);
    }
    os << '\n';
  }
}

}  // namespace mlsim
