#include "common/cancellation.h"

#include <string>

namespace mlsim {

const char* to_string(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone: return "none";
    case CancelReason::kManual: return "cancelled";
    case CancelReason::kDeadline: return "deadline exceeded";
    case CancelReason::kHang: return "worker hung";
  }
  return "unknown";
}

void CancelSource::cancel(CancelReason reason) {
  std::uint8_t expected = 0;
  state_->reason.compare_exchange_strong(
      expected, static_cast<std::uint8_t>(reason), std::memory_order_acq_rel);
}

bool CancelToken::cancelled() const {
  if (state_ == nullptr) return false;
  if (state_->reason.load(std::memory_order_acquire) != 0) return true;
  if (state_->has_deadline &&
      std::chrono::steady_clock::now() >= state_->deadline) {
    // Latch the expiry so reason() is stable from here on.
    std::uint8_t expected = 0;
    state_->reason.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(CancelReason::kDeadline),
        std::memory_order_acq_rel);
    return true;
  }
  return false;
}

void CancelToken::check() const {
  if (state_ == nullptr) return;
  const std::uint64_t beat =
      state_->heartbeat.fetch_add(1, std::memory_order_relaxed);
  const std::uint8_t r = state_->reason.load(std::memory_order_acquire);
  if (r != 0) {
    throw CancelledError(static_cast<CancelReason>(r),
                         std::string("request cancelled: ") +
                             to_string(static_cast<CancelReason>(r)));
  }
  if ((beat & 63) == 0 && state_->has_deadline &&
      std::chrono::steady_clock::now() >= state_->deadline) {
    std::uint8_t expected = 0;
    state_->reason.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(CancelReason::kDeadline),
        std::memory_order_acq_rel);
    throw CancelledError(CancelReason::kDeadline,
                         "request cancelled: deadline exceeded");
  }
}

}  // namespace mlsim
