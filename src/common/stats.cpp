#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mlsim {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double signed_percent_error(double reference, double value) {
  check(reference != 0.0, "percent error undefined for zero reference");
  return (reference - value) / reference * 100.0;
}

double absolute_percent_error(double reference, double value) {
  return std::abs(signed_percent_error(reference, value));
}

double mean_absolute_percent_error(const std::vector<double>& reference,
                                   const std::vector<double>& value) {
  check(reference.size() == value.size(), "MAPE requires equal-size series");
  check(!reference.empty(), "MAPE requires non-empty series");
  double acc = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    acc += absolute_percent_error(reference[i], value[i]);
  }
  return acc / static_cast<double>(reference.size());
}

double percentile(std::vector<double> data, double p) {
  check(!data.empty(), "percentile of empty data");
  check(p >= 0.0 && p <= 100.0, "percentile p out of range");
  std::sort(data.begin(), data.end());
  const std::size_t n = data.size();
  const double idx = p / 100.0 * static_cast<double>(n - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  // p = 100 (and any floating overshoot of idx) resolves to the maximum
  // without ever forming an out-of-range interpolation partner.
  if (lo + 1 >= n) return data[n - 1];
  const double frac = idx - static_cast<double>(lo);
  return data[lo] * (1.0 - frac) + data[lo + 1] * frac;
}

double quantile_from_buckets(const std::vector<double>& upper_edges,
                             const std::vector<std::uint64_t>& counts,
                             double p) {
  check(upper_edges.size() == counts.size(),
        "bucket edges and counts must have equal size");
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = static_cast<double>(cum + counts[i]);
    if (next >= target) {
      const double lo_edge = i == 0 ? 0.0 : upper_edges[i - 1];
      const double hi_edge = upper_edges[i];
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(counts[i]);
      return lo_edge * (1.0 - frac) + hi_edge * frac;
    }
    cum += counts[i];
  }
  return upper_edges.back();  // open-ended last bucket: clamp to its edge
}

}  // namespace mlsim
