// Minimal work-stealing-free thread pool with a parallel_for helper.
//
// The library runs on anything from 1 core (this development machine) to a
// many-core node; parallel_for degrades gracefully to a serial loop when the
// pool has a single worker.
//
// Workers are named `mlsim-worker-N` (visible in /proc and profilers), and
// shutdown drains deterministically: every enqueued task runs exactly once
// before the destructor returns, so the `thread_pool.queue_depth` gauge
// (see obs/metric_names.h) reads zero at exit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mlsim {

class ThreadPool {
 public:
  /// n_threads == 0 selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }  // +1: caller thread

  /// Tasks currently queued (not yet picked up by a worker).
  std::size_t pending() const;

  /// Run fn(i) for i in [begin, end), partitioned in contiguous chunks across
  /// the pool plus the calling thread. Blocks until all iterations finish.
  /// Exceptions from workers are rethrown on the caller (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Chunked variant: fn(chunk_begin, chunk_end) per contiguous chunk.
  void parallel_for_chunks(std::size_t begin, std::size_t end,
                           const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide pool sized from hardware concurrency.
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();
  void enqueue(std::function<void()> fn);
  void run_task(Task& task);

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace mlsim
