// Minimal work-stealing-free thread pool with a parallel_for helper.
//
// The library runs on anything from 1 core (this development machine) to a
// many-core node; parallel_for degrades gracefully to a serial loop when the
// pool has a single worker.
//
// Workers are named `mlsim-worker-N` (visible in /proc and profilers), and
// shutdown drains deterministically: every enqueued task runs exactly once
// before the destructor returns, so the `thread_pool.queue_depth` gauge
// (see obs/metric_names.h) reads zero at exit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mlsim {

/// Thrown by ThreadPool::post() when the task queue is at capacity — the
/// pool never grows its queue beyond the configured bound, so a producer
/// outrunning the workers gets explicit backpressure instead of unbounded
/// memory growth.
class QueueFullError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ThreadPool {
 public:
  /// n_threads == 0 selects hardware_concurrency() (at least 1).
  /// queue_capacity == 0 means unbounded; otherwise at most that many tasks
  /// may be queued (running tasks do not count). parallel_for degrades
  /// gracefully when the queue is full (chunks run on the caller); post()
  /// throws QueueFullError.
  explicit ThreadPool(std::size_t n_threads = 0, std::size_t queue_capacity = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }  // +1: caller thread

  /// Tasks currently queued (not yet picked up by a worker).
  std::size_t pending() const;

  /// Configured queue bound (0 = unbounded).
  std::size_t queue_capacity() const { return capacity_; }

  /// Highest queue depth observed so far (also exported as the
  /// `thread_pool.queue_high_water` gauge).
  std::size_t queue_high_water() const;

  /// Fire-and-forget task submission. Throws QueueFullError when the queue
  /// is at capacity. Tasks posted to a pool with zero workers (single-core
  /// machine) run in the destructor's drain.
  void post(std::function<void()> fn);

  /// Run fn(i) for i in [begin, end), partitioned in contiguous chunks across
  /// the pool plus the calling thread. Blocks until all iterations finish.
  /// Exceptions from workers are rethrown on the caller (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Chunked variant: fn(chunk_begin, chunk_end) per contiguous chunk.
  void parallel_for_chunks(std::size_t begin, std::size_t end,
                           const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide pool sized from hardware concurrency.
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();
  /// Queue `fn` if capacity allows; returns false when the queue is full.
  bool try_enqueue(std::function<void()> fn);
  void run_task(Task& task);

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::size_t capacity_ = 0;    // 0 = unbounded
  std::size_t high_water_ = 0;  // max queue depth seen (under mu_)
};

}  // namespace mlsim
