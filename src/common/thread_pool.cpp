#include "common/thread_pool.h"

#include <atomic>
#include <cstdio>
#include <exception>
#include <string>

#include "common/check.h"
#include "obs/obs.h"

#ifdef __linux__
#include <pthread.h>
#endif

namespace mlsim {

namespace {

void set_current_thread_name(std::size_t index) {
#ifdef __linux__
  char name[16];  // pthread limit: 15 chars + NUL
  std::snprintf(name, sizeof(name), "mlsim-worker-%zu", index);
  pthread_setname_np(pthread_self(), name);
#else
  (void)index;
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::size_t n_threads, std::size_t queue_capacity)
    : capacity_(queue_capacity) {
  if (n_threads == 0) {
    n_threads = std::thread::hardware_concurrency();
    if (n_threads == 0) n_threads = 1;
  }
  // The calling thread participates in parallel_for, so spawn n-1 workers.
  for (std::size_t i = 1; i < n_threads; ++i) {
    workers_.emplace_back([this, i] {
      set_current_thread_name(i);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  // Deterministic drain: workers exit only once the queue is empty, but a
  // pool with zero workers (single-core machine) may still hold enqueued
  // tasks — run them here so every queued task executes exactly once and the
  // queue-depth gauge reads zero at exit.
  while (!queue_.empty()) {
    Task task = std::move(queue_.front());
    queue_.pop_front();
    MLSIM_GAUGE_SET(obs::names::kPoolQueueDepth,
                    static_cast<double>(queue_.size()));
    run_task(task);
  }
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lk(mu_);
  return queue_.size();
}

std::size_t ThreadPool::queue_high_water() const {
  std::lock_guard lk(mu_);
  return high_water_;
}

void ThreadPool::run_task(Task& task) {
  MLSIM_HIST_TIMER(obs::names::kPoolTaskNs);
  task.fn();
  MLSIM_COUNTER_ADD(obs::names::kPoolTasksDone, 1);
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      MLSIM_GAUGE_SET(obs::names::kPoolQueueDepth,
                      static_cast<double>(queue_.size()));
    }
    run_task(task);
  }
}

bool ThreadPool::try_enqueue(std::function<void()> fn) {
  {
    std::lock_guard lk(mu_);
    if (capacity_ != 0 && queue_.size() >= capacity_) return false;
    queue_.push_back(Task{std::move(fn)});
    if (queue_.size() > high_water_) {
      high_water_ = queue_.size();
      MLSIM_GAUGE_SET(obs::names::kPoolQueueHighWater,
                      static_cast<double>(high_water_));
    }
    MLSIM_GAUGE_SET(obs::names::kPoolQueueDepth,
                    static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::post(std::function<void()> fn) {
  if (!try_enqueue(std::move(fn))) {
    throw QueueFullError("thread pool queue is at capacity (" +
                         std::to_string(capacity_) + " tasks)");
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t n_chunks = std::min<std::size_t>(size(), n);
  if (n_chunks <= 1) {
    fn(begin, end);
    return;
  }

  std::atomic<std::size_t> done{0};
  std::exception_ptr first_error;
  std::mutex err_mu;
  std::mutex done_mu;
  std::condition_variable done_cv;

  const std::size_t chunk = (n + n_chunks - 1) / n_chunks;
  std::size_t launched = 0;
  for (std::size_t c = 1; c < n_chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk);
    const bool queued = try_enqueue([&, lo, hi] {
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      {
        // Notify while holding done_mu: the waiter owns done_cv on its
        // stack and may destroy it the moment the predicate holds, so the
        // signal must complete before the count becomes observable.
        std::lock_guard lk(done_mu);
        done.fetch_add(1, std::memory_order_release);
        done_cv.notify_one();
      }
    });
    if (queued) {
      ++launched;
    } else {
      // Bounded queue full: graceful degradation — the chunk runs on the
      // caller instead of growing the queue.
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  }
  // Caller runs the first chunk.
  try {
    fn(begin, std::min(end, begin + chunk));
  } catch (...) {
    std::lock_guard lk(err_mu);
    if (!first_error) first_error = std::current_exception();
  }
  {
    std::unique_lock lk(done_mu);
    done_cv.wait(lk, [&] { return done.load(std::memory_order_acquire) == launched; });
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(begin, end, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mlsim
