// Console / CSV table writer used by the benchmark harnesses to print the
// same rows and series the paper's tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace mlsim {

class Table {
 public:
  using Cell = std::variant<std::string, double, std::int64_t>;

  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<Cell> cells);

  /// Aligned fixed-width console rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no embedded quotes expected in our data).
  void write_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }

  /// Formatting precision for double cells (default 4 significant decimals).
  void set_precision(int digits) { precision_ = digits; }

 private:
  std::string render(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace mlsim
