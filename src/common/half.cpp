#include "common/half.h"

#include <bit>
#include <cstring>

namespace mlsim {

std::uint16_t float_to_half_bits(float f) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xffu) - 127 + 15;
  std::uint32_t mant = x & 0x7fffffu;

  if (((x >> 23) & 0xffu) == 0xffu) {
    // Inf / NaN: preserve NaN-ness.
    return static_cast<std::uint16_t>(sign | 0x7c00u | (mant ? 0x200u : 0u));
  }
  if (exp >= 0x1f) {
    // Overflow -> infinity.
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (exp <= 0) {
    // Denormal or underflow to zero.
    if (exp < -10) return static_cast<std::uint16_t>(sign);
    mant |= 0x800000u;  // implicit leading 1
    const int shift = 14 - exp;
    std::uint32_t half_mant = mant >> shift;
    // Round to nearest even.
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    return static_cast<std::uint16_t>(sign | half_mant);
  }
  // Normalised: keep top 10 mantissa bits, round to nearest even.
  std::uint32_t half_mant = mant >> 13;
  const std::uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1u))) {
    ++half_mant;
    if (half_mant == 0x400u) {  // mantissa overflowed into exponent
      half_mant = 0;
      ++exp;
      if (exp >= 0x1f) return static_cast<std::uint16_t>(sign | 0x7c00u);
    }
  }
  return static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(exp) << 10) |
                                    half_mant);
}

float half_bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t mant = h & 0x3ffu;

  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // signed zero
    } else {
      // Denormal: normalise.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      out = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
            ((m & 0x3ffu) << 13);
    }
  } else if (exp == 0x1f) {
    out = sign | 0x7f800000u | (mant << 13);  // inf / NaN
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

}  // namespace mlsim
