// Artifact cache: benches and examples share expensive intermediates (trained
// model weights, labeled traces) via a directory of versioned files so a
// multi-binary run trains once, not per binary.
#pragma once

#include <filesystem>
#include <string>

namespace mlsim {

/// Root directory for cached artifacts. Defaults to "./mlsim-artifacts";
/// override with the MLSIM_ARTIFACT_DIR environment variable. Created on
/// first use.
std::filesystem::path artifact_dir();

/// Path for a named artifact under artifact_dir() (not created).
std::filesystem::path artifact_path(const std::string& name);

/// True if a cached artifact with this name exists and is non-empty.
bool artifact_exists(const std::string& name);

}  // namespace mlsim
