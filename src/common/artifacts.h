// Artifact cache: benches and examples share expensive intermediates (trained
// model weights, labeled traces) via a directory of versioned files so a
// multi-binary run trains once, not per binary.
//
// Writes are hardened (docs/RESILIENCE.md): artifacts are produced at a
// temporary path and renamed into place atomically, with an FNV-1a checksum
// sidecar (`<name>.sum`), so a killed writer never leaves a half-written
// file that a later run would trust.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <string_view>

namespace mlsim {

/// Root directory for cached artifacts. Defaults to "./mlsim-artifacts";
/// override with the MLSIM_ARTIFACT_DIR environment variable. Created on
/// first use.
std::filesystem::path artifact_dir();

/// Path for a named artifact under artifact_dir() (not created).
std::filesystem::path artifact_path(const std::string& name);

/// True if a cached artifact with this name exists, is non-empty, and — when
/// a checksum sidecar is present — matches its recorded checksum.
bool artifact_exists(const std::string& name);

/// True if `name`'s checksum sidecar exists and matches the file content.
/// Artifacts without a sidecar (written by older builds or by hand) pass.
bool artifact_checksum_ok(const std::string& name);

/// Produce an artifact atomically: `write(tmp)` creates the file at a
/// temporary path in the artifact dir; it is then checksummed (sidecar
/// `<name>.sum`) and renamed into place. If `write` throws, the temporary
/// is removed and nothing is published.
void artifact_commit(
    const std::string& name,
    const std::function<void(const std::filesystem::path&)>& write);

/// 64-bit FNV-1a over a byte buffer.
std::uint64_t fnv1a64(const void* data, std::size_t size);

/// FNV-1a of a whole file. Throws IoError if the file cannot be read.
std::uint64_t file_checksum(const std::filesystem::path& path);

/// Write `bytes` to `path` atomically (temp file in the same directory +
/// rename). Throws IoError on any filesystem failure; the temp file never
/// survives an error.
void write_file_atomic(const std::filesystem::path& path,
                       std::string_view bytes);

}  // namespace mlsim
