// Cooperative cancellation for long-running simulation loops.
//
// A CancelSource owns the shared cancellation state of one request; the
// CancelToken it hands out is polled from inside the engine loops
// (sequential_sim, gpu_sim, parallel_sim, streaming). `check()` doubles as a
// liveness heartbeat: every poll bumps a relaxed atomic counter that the
// service watchdog (src/service/service.h) samples to tell a slow worker
// from a hung one — a worker that stops polling stops heartbeating.
//
// Cost contract: a null token is free (pointer test); a live `check()` is one
// relaxed fetch_add plus a flag load, with the steady_clock deadline
// comparison amortised to every 64th poll. Engines may therefore poll once
// per simulated instruction.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>

namespace mlsim {

/// Why a request was cancelled. Ordering matters only for to_string().
enum class CancelReason : std::uint8_t {
  kNone = 0,
  kManual,    // caller asked (service cancel(), shutdown)
  kDeadline,  // per-request deadline expired
  kHang,      // watchdog declared the worker hung
};

const char* to_string(CancelReason reason);

/// Thrown by CancelToken::check() once the request is cancelled. Distinct
/// from CheckError (a bug) and IoError (the filesystem): cancellation is a
/// normal, expected outcome that drivers map to a typed response.
class CancelledError : public std::runtime_error {
 public:
  CancelledError(CancelReason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}
  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

namespace detail {
struct CancelState {
  std::atomic<std::uint8_t> reason{0};     // CancelReason; 0 = live
  std::atomic<std::uint64_t> heartbeat{0};  // bumped by every token poll
  // Deadline is fixed before tokens are handed to a worker, so plain
  // (non-atomic) storage read-only thereafter is race-free.
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
};
}  // namespace detail

/// Poll handle threaded through engine loops. Copyable; a default-constructed
/// token is null and never reports cancellation.
class CancelToken {
 public:
  CancelToken() = default;

  bool valid() const { return state_ != nullptr; }

  /// True once the request is cancelled (also latches an expired deadline).
  bool cancelled() const;

  CancelReason reason() const {
    return state_ == nullptr
               ? CancelReason::kNone
               : static_cast<CancelReason>(
                     state_->reason.load(std::memory_order_acquire));
  }

  /// Heartbeat + cancellation poll: throws CancelledError when cancelled.
  /// The deadline is evaluated on every 64th poll (and on the first).
  void check() const;

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<detail::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::CancelState> state_;
};

/// Owner side: cancels, sets the deadline, and reads the heartbeat.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<detail::CancelState>()) {}

  /// Set an absolute deadline `after` from now. Must be called before the
  /// token is handed to another thread.
  void set_deadline_after(std::chrono::nanoseconds after) {
    state_->deadline = std::chrono::steady_clock::now() + after;
    state_->has_deadline = true;
  }

  /// First cancellation wins; later reasons are ignored.
  void cancel(CancelReason reason = CancelReason::kManual);

  bool cancelled() const {
    return state_->reason.load(std::memory_order_acquire) != 0;
  }
  CancelReason reason() const {
    return static_cast<CancelReason>(
        state_->reason.load(std::memory_order_acquire));
  }

  /// Number of token polls so far — the watchdog's liveness signal.
  std::uint64_t heartbeat() const {
    return state_->heartbeat.load(std::memory_order_relaxed);
  }

  CancelToken token() const { return CancelToken(state_); }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

}  // namespace mlsim
