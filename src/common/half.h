// IEEE-754 binary16 ("half") emulation.
//
// The paper uses NVIDIA half-precision inference (Tensor Core) to roughly
// halve inference time with negligible accuracy loss. We have no fp16
// hardware, so we emulate the *numerics* (round-to-nearest-even conversion
// through a 16-bit storage format) to measure the accuracy cost, while the
// *speed* benefit is captured by the device cost model.
#pragma once

#include <cstdint>

namespace mlsim {

/// Convert an IEEE binary32 float to binary16 bits (round-to-nearest-even,
/// with denormal and infinity/NaN handling).
std::uint16_t float_to_half_bits(float f);

/// Convert binary16 bits back to binary32.
float half_bits_to_float(std::uint16_t h);

/// Round-trip a float through binary16 (what storing an activation or weight
/// in half precision does to its value).
inline float quantize_to_half(float f) {
  return half_bits_to_float(float_to_half_bits(f));
}

/// Value type wrapper for clarity at API boundaries.
class Half {
 public:
  Half() = default;
  explicit Half(float f) : bits_(float_to_half_bits(f)) {}

  explicit operator float() const { return half_bits_to_float(bits_); }
  std::uint16_t bits() const { return bits_; }
  static Half from_bits(std::uint16_t b) {
    Half h;
    h.bits_ = b;
    return h;
  }

 private:
  std::uint16_t bits_ = 0;
};

}  // namespace mlsim
