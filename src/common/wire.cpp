#include "common/wire.h"

#include <fstream>

#include "common/artifacts.h"

namespace mlsim::wire {

std::string seal(std::uint32_t magic, std::string_view payload) {
  Writer head;
  head.pod(magic);
  head.pod(kWireVersion);
  head.pod(fnv1a64(payload.data(), payload.size()));
  head.pod(static_cast<std::uint64_t>(payload.size()));
  std::string out = head.take();
  out.append(payload);
  return out;
}

std::string_view unseal(std::uint32_t magic, std::string_view enveloped,
                        const std::string& context) {
  check(enveloped.size() >= kEnvelopeBytes,
        "envelope too small for its header: " + context);
  Reader head(enveloped.data(), kEnvelopeBytes, context);
  check(head.pod<std::uint32_t>() == magic,
        "bad envelope magic (wrong file or corrupted): " + context);
  check(head.pod<std::uint32_t>() == kWireVersion,
        "unsupported envelope version: " + context);
  const auto sum = head.pod<std::uint64_t>();
  const auto payload_size = head.pod<std::uint64_t>();
  check(payload_size == enveloped.size() - kEnvelopeBytes,
        "envelope payload length mismatch (torn write?): " + context);
  const std::string_view payload = enveloped.substr(kEnvelopeBytes);
  check(fnv1a64(payload.data(), payload.size()) == sum,
        "envelope checksum mismatch (corrupted): " + context);
  return payload;
}

void write_envelope_file(const std::filesystem::path& path, std::uint32_t magic,
                         std::string_view payload) {
  write_file_atomic(path, seal(magic, payload));
}

bool read_envelope_file(const std::filesystem::path& path, std::uint32_t magic,
                        std::string& payload) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return false;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) throw IoError("cannot stat enveloped file: " + path.string());
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) throw IoError("cannot open enveloped file: " + path.string());
  std::string all(size, '\0');
  is.read(all.data(), static_cast<std::streamsize>(size));
  check(static_cast<bool>(is), "read failed on enveloped file: " + path.string());
  payload = std::string(unseal(magic, all, path.string()));
  return true;
}

}  // namespace mlsim::wire
