// Shared binary wire format (docs/DISTRIBUTED.md, docs/RESILIENCE.md).
//
// One envelope discipline for every byte stream the system persists or
// transmits:
//
//   magic | version | payload_checksum | payload_size | payload
//
// with all integers little-endian and the checksum FNV-1a over the payload.
// Checkpoint files (src/core/checkpoint.cpp) and the RPC frames of the
// distributed cluster (src/net/frame.h) both seal their payloads through
// this header, so a torn write on disk and a truncated frame on a socket
// are caught by the same length/checksum pair before a single payload
// field is trusted.
//
// Writer/Reader are the append-only little-endian serializers the payloads
// themselves are built with. Reader throws CheckError on any attempt to
// read past the end — corrupt input can never index out of bounds.
#pragma once

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace mlsim::wire {

/// Envelope format version shared by checkpoints and RPC frames. Bump when
/// the envelope layout (not a payload schema) changes.
inline constexpr std::uint32_t kWireVersion = 1;

/// Fixed envelope size: magic(4) + version(4) + checksum(8) + size(8).
inline constexpr std::size_t kEnvelopeBytes = 4 + 4 + 8 + 8;

/// Append-only little-endian payload serializer.
class Writer {
 public:
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const char*>(&v);
    buf_.append(p, sizeof(T));
  }
  template <typename T>
  void vec(const std::vector<T>& v) {
    pod(static_cast<std::uint64_t>(v.size()));
    static_assert(std::is_trivially_copyable_v<T>);
    buf_.append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
  }
  void str(const std::string& s) {
    pod(static_cast<std::uint64_t>(s.size()));
    buf_.append(s);
  }
  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian payload deserializer. `context` names the
/// source (file path, peer address) in error messages.
class Reader {
 public:
  Reader(const char* data, std::size_t size, std::string context)
      : p_(data), end_(data + size), context_(std::move(context)) {}
  Reader(std::string_view payload, std::string context)
      : Reader(payload.data(), payload.size(), std::move(context)) {}

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T));
    T v;
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    return v;
  }
  template <typename T>
  std::vector<T> vec() {
    const auto count = pod<std::uint64_t>();
    need(count * sizeof(T));
    std::vector<T> v(count);
    std::memcpy(v.data(), p_, count * sizeof(T));
    p_ += count * sizeof(T);
    return v;
  }
  std::string str() {
    const auto len = pod<std::uint64_t>();
    need(len);
    std::string s(p_, len);
    p_ += len;
    return s;
  }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  void finish() const {
    check(p_ == end_, "payload has trailing bytes: " + context_);
  }

 private:
  void need(std::uint64_t bytes) const {
    check(static_cast<std::uint64_t>(end_ - p_) >= bytes,
          "payload truncated: " + context_);
  }
  const char* p_;
  const char* end_;
  std::string context_;
};

/// Seal `payload` into an enveloped byte string (magic | version | checksum |
/// size | payload).
std::string seal(std::uint32_t magic, std::string_view payload);

/// Validate an enveloped byte string and return a view of its payload.
/// Throws CheckError naming `context` on bad magic/version, length mismatch
/// (torn write), or checksum mismatch (corruption).
std::string_view unseal(std::uint32_t magic, std::string_view enveloped,
                        const std::string& context);

/// Write `payload` to `path` sealed and atomically (temp + rename).
/// Throws IoError on filesystem failure.
void write_envelope_file(const std::filesystem::path& path, std::uint32_t magic,
                         std::string_view payload);

/// Read and validate an enveloped file into `payload`. Returns false when
/// the file does not exist; throws IoError on filesystem failure and
/// CheckError when the content fails validation.
bool read_envelope_file(const std::filesystem::path& path, std::uint32_t magic,
                        std::string& payload);

}  // namespace mlsim::wire
