// Fig. 10 — our approach vs. the state of the art (MIPS).
//
// Two kinds of numbers are reported side by side:
//   - measured: wall-clock throughput of this repository's substrate
//     simulators (detailed OoO model = gem5-class; interval model =
//     ZSim-class) on this host;
//   - modeled: device-time throughput of the ML simulators from the
//     calibrated A100/V100 cost model (this machine has no GPU);
//   - paper: the values reported in the paper for its testbed.
// The claim being reproduced is the *ordering and rough magnitudes*:
// sequential ML simulators are slowest, gem5 next, ZSim fast but bounded,
// our parallel GPU simulator fastest and scaling to hundreds of GPUs.
#include <chrono>
#include <functional>

#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/ithemal.h"
#include "core/parallel_sim.h"
#include "uarch/interval_core.h"

using namespace mlsim;
using Clock = std::chrono::steady_clock;

namespace {
double wall_mips(std::size_t instructions, const std::function<void()>& fn) {
  const auto t0 = Clock::now();
  fn();
  const double us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());
  return static_cast<double>(instructions) / std::max(1.0, us);
}
}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 2'000'000);
  const std::string abbr = args.benchmark.empty() ? "xz" : args.benchmark;
  bench::banner("Fig. 10: comparison with state-of-the-art simulators",
                "benchmark " + abbr + ", " + std::to_string(args.instructions) +
                    " instructions (paper: 100M; scalability point 10B)");

  const auto tr = core::labeled_trace(abbr, args.instructions);
  const auto& profile = trace::find_workload(abbr);

  // gem5-class: the detailed OoO ground-truth pipeline, measured for real.
  const double gem5_mips = wall_mips(args.instructions, [&] {
    uarch::generate_labeled_trace(profile, args.instructions, {}, 2);
  });

  // ZSim-class: interval core over pre-annotated stream, measured for real.
  uarch::IntervalCore interval;
  {
    const trace::Program prog = trace::Program::generate(profile, 2);
    trace::FunctionalSim fsim(prog, 2);
    uarch::Annotator ann;
    // Pre-generate outside the timed section.
    std::vector<std::pair<trace::DynInst, trace::Annotation>> stream;
    stream.reserve(args.instructions);
    for (std::size_t i = 0; i < args.instructions; ++i) {
      const auto d = fsim.next();
      stream.emplace_back(d, ann.annotate(d));
    }
    const double zsim_mips = wall_mips(args.instructions, [&] {
      for (const auto& [d, a] : stream) interval.process(d, a);
    });

    core::AnalyticPredictor pred;

    // Our simulator, modeled on 1 A100 / 1 V100 / 282 V100.
    auto ours = [&](std::size_t gpus, const device::GpuSpec& gpu) {
      core::ParallelSimOptions o;
      o.num_subtraces = 32768 * gpus;
      o.num_gpus = gpus;
      o.context_length = core::kDefaultContextLength;
      o.warmup = o.context_length;
      o.post_error_correction = true;
      core::CostModel cm;
      cm.gpu = gpu;
      o.costs = cm;
      o.engine = gpu.sparse_speedup > 1.0 ? device::Engine::kTensorRTSparse
                                          : device::Engine::kTensorRTHalf;
      // Preserve the paper's per-partition length (~3051 = 100M/32k)
      // when the total instruction count is scaled down.
      o.num_subtraces = std::min(o.num_subtraces, tr.size() / 3051);
      o.num_subtraces = std::max<std::size_t>(o.num_subtraces, gpus);
      core::ParallelSimulator sim(pred, o);
      return sim.run(tr).mips();
    };
    const double a100 = ours(1, device::GpuSpec::a100());
    const double v100 = ours(1, device::GpuSpec::v100());
    const double summit = ours(282, device::GpuSpec::v100());

    // Sequential ML simulator on the device (modeled).
    device::Device dev(device::GpuSpec::a100());
    core::GpuSimOptions seq_o;
    seq_o.context_length = core::kDefaultContextLength;
    seq_o.gpu_input_construction = false;
    seq_o.sliding_window = false;
    seq_o.custom_conv = false;
    seq_o.engine = device::Engine::kLibTorch;
    seq_o.pipelined = false;
    core::GpuSimulator seq_sim(pred, dev, seq_o);
    const double seq_cpp =
        seq_sim.run(tr, 0, std::min<std::size_t>(tr.size(), 50000)).mips();

    Table t({"simulator", "MIPS (this repo)", "basis", "paper MIPS"});
    t.add_row({std::string("Ithemal (Python, sequential)"), 0.00057,
               std::string("paper value"), 0.00057});
    t.add_row({std::string("SimNet sequential (Python)"), 0.0013,
               std::string("paper value"), 0.0013});
    t.add_row({std::string("SimNet sequential (C++ baseline)"), seq_cpp,
               std::string("modeled A100"), 0.133});
    t.add_row({std::string("parallel CPU (64-core ref.)"), 0.0033,
               std::string("paper value"), 0.0033});
    t.add_row({std::string("gem5-class detailed OoO"), gem5_mips,
               std::string("measured host"), 0.198});
    t.add_row({std::string("ZSim-class interval model"), zsim_mips,
               std::string("measured host"), 16.45});
    t.add_row({std::string("ours, 1x A100"), a100, std::string("modeled"), 2.86});
    t.add_row({std::string("ours, 1x V100"), v100, std::string("modeled"), 2.45});
    t.add_row({std::string("ours, 282x V100 (Summit)"), summit,
               std::string("modeled"), 553.68});
    bench::emit(t, "fig10_sota_comparison");

    std::printf("note: host-measured rates reflect this repo's fast timestamp "
                "models, not gem5/ZSim binaries; ordering + modeled GPU rates "
                "are the reproduced result.\n");
  }
  return 0;
}
