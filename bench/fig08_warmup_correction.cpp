// Fig. 8 — warmup vs. warmup+post-error-correction recovery on the 4-way
// partitioned trace. Paper: simulation errors 10% (baseline) -> 3% (warmup)
// -> 0.1% (warmup + correction), and for the third partition the context /
// prediction differences vanish entirely under correction.
#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/parallel_sim.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 25000);
  const std::string abbr = args.benchmark.empty() ? "xz" : args.benchmark;
  const std::size_t ctx = 64;
  const std::size_t parts = 4;
  bench::banner("Fig. 8: parallel-error recovery (4 sub-traces)",
                "benchmark " + abbr + ", " + std::to_string(args.instructions) +
                    " instructions, warmup = context length, correction limit 100");

  const auto tr = core::labeled_trace(abbr, args.instructions);
  core::AnalyticPredictor pred;
  const double seq = bench::sequential_ml_cpi(pred, tr, ctx);

  std::size_t corrected = 0;
  auto run = [&](std::size_t n_parts, std::size_t warmup, bool corr) {
    core::ParallelSimOptions o;
    o.num_subtraces = n_parts;
    o.context_length = ctx;
    o.warmup = warmup;
    o.post_error_correction = corr;
    o.correction_limit = 100;
    core::ParallelSimulator sim(pred, o);
    const auto res = sim.run(tr);
    if (corr) corrected = res.corrected_instructions;
    return std::abs(core::ParallelSimulator::cpi_error_percent(seq, res.cpi()));
  };

  Table t({"configuration", "4 sub-traces (paper setup) %",
           "64 sub-traces (scaled) %", "paper error (4)"});
  t.add_row({std::string("parallel baseline"), run(parts, 0, false),
             run(64, 0, false), std::string("10%")});
  t.add_row({std::string("+ warmup"), run(parts, ctx, false),
             run(64, ctx, false), std::string("3%")});
  t.add_row({std::string("+ warmup + correction"), run(parts, ctx, true),
             run(64, ctx, true), std::string("0.1%")});
  bench::emit(t, "fig08_warmup_correction");
  std::printf("sequential reference CPI %.4f; corrected instructions in the "
              "64-partition run: %zu (variable per partition, first "
              "partition never corrected)\n", seq, corrected);
  std::printf("reproduced claim: each recovery stage cuts the error; the "
              "analytic stand-in regains context faster than the paper's CNN, "
              "so absolute errors at 4 partitions are smaller.\n");
  return 0;
}
