// Fig. 21 — L2 cache-size design-space exploration without retraining
// (Table IV): changing the L2 only changes the input trace (hit-level
// features), so the same predictor is reused across configurations. Paper:
// wrf CPI improves up to 1MB then flattens — 1MB is the pick.
#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/metrics.h"
#include "core/parallel_sim.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 300000);
  const std::string abbr = args.benchmark.empty() ? "wrf" : args.benchmark;
  const std::size_t ctx = 64;
  bench::banner("Fig. 21: L2 size design-space exploration (no retraining)",
                "benchmark " + abbr + ", " + std::to_string(args.instructions) +
                    " instructions; only the trace is regenerated per point");

  core::AnalyticPredictor pred;  // same predictor for every configuration
  Table t({"L2 size", "ML CPI", "truth CPI", "ML delta vs prev %"});
  double prev_ml = 0;
  double best_gain = 0;
  std::string best_size;
  for (const std::size_t kb : {256, 512, 1024, 2048, 4096}) {
    uarch::MachineConfig m;
    m.l2.size_bytes = static_cast<std::uint32_t>(kb * 1024);
    const auto tr = core::labeled_trace(abbr, args.instructions, m);
    core::ParallelSimOptions o;
    o.num_subtraces = 1;
    o.context_length = ctx;
    core::ParallelSimulator sim(pred, o);
    const double ml = sim.run(tr).cpi();
    const double truth = static_cast<double>(core::total_cycles_from_targets(tr)) /
                         static_cast<double>(tr.size());
    const double delta = prev_ml > 0 ? (prev_ml - ml) / prev_ml * 100.0 : 0.0;
    if (prev_ml > 0 && delta > best_gain) {
      best_gain = delta;
      best_size = std::to_string(kb) + "KB";
    }
    t.add_row({std::to_string(kb) + "KB", ml, truth, delta});
    prev_ml = ml;
  }
  t.set_precision(3);
  bench::emit(t, "fig21_l2_dse");
  std::printf("paper: clear improvement up to 1MB, flat beyond -> optimal "
              "1MB; largest marginal gain here when growing to %s.\n",
              best_size.c_str());
  return 0;
}
