// Fig. 21 — L2 cache-size design-space exploration without retraining
// (Table IV): changing the L2 only changes the input trace (hit-level
// features), so the same predictor is reused across configurations. Paper:
// wrf CPI improves up to 1MB then flattens — 1MB is the pick.
//
// Driven by the sweep engine (docs/SWEEPS.md): the five sizes are one
// l2.size_kb axis, and each point's CPI is bit-identical to simulating that
// configuration standalone.
#include "bench_util.h"
#include "sweep/sweep.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 300000);
  const std::string abbr = args.benchmark.empty() ? "wrf" : args.benchmark;
  bench::banner("Fig. 21: L2 size design-space exploration (no retraining)",
                "benchmark " + abbr + ", " + std::to_string(args.instructions) +
                    " instructions; only the trace is regenerated per point");

  sweep::SweepSpec spec;
  spec.benchmark = abbr;
  spec.instructions = args.instructions;
  spec.axes.push_back({"l2.size_kb", {"256", "512", "1024", "2048", "4096"}});
  sweep::SweepOptions so;
  so.num_subtraces = 1;  // the figure's sequential-reference configuration
  so.context_length = 64;
  so.recovery = false;
  const auto report = sweep::run_sweep(spec, so);

  Table t({"L2 size", "ML CPI", "truth CPI", "ML delta vs prev %"});
  double prev_ml = 0;
  double best_gain = 0;
  std::string best_size;
  for (const auto& p : report.points) {
    const double ml = p.cpi;
    const std::string size_label = p.point.settings[0].second + "KB";
    const double delta = prev_ml > 0 ? (prev_ml - ml) / prev_ml * 100.0 : 0.0;
    if (prev_ml > 0 && delta > best_gain) {
      best_gain = delta;
      best_size = size_label;
    }
    t.add_row({size_label, ml, p.truth_cpi, delta});
    prev_ml = ml;
  }
  t.set_precision(3);
  bench::emit(t, "fig21_l2_dse");
  std::printf("paper: clear improvement up to 1MB, flat beyond -> optimal "
              "1MB; largest marginal gain here when growing to %s.\n",
              best_size.c_str());
  return 0;
}
