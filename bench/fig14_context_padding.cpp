// Fig. 14 — average / maximum / minimum number of context instructions per
// benchmark, and the resulting padding fraction the custom convolution
// avoids computing. Paper: on average >68% of the 112-instruction window is
// padding.
#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/parallel_sim.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 100000);
  const std::size_t ctx = core::kDefaultContextLength;
  bench::banner("Fig. 14: context-instruction occupancy per benchmark",
                "window = " + std::to_string(ctx + 1) + " instructions");

  Table t({"benchmark", "avg ctx", "max ctx", "min ctx", "padding %"});
  core::AnalyticPredictor pred;
  RunningStats overall;
  for (const auto& abbr : bench::benchmarks_or(args, trace::test_benchmarks())) {
    const auto tr = core::labeled_trace(abbr, args.instructions);
    core::ParallelSimOptions o;
    o.num_subtraces = 1;
    o.context_length = ctx;
    o.record_context_counts = true;
    core::ParallelSimulator sim(pred, o);
    const auto res = sim.run(tr);
    RunningStats s;
    for (auto c : res.context_counts) s.add(static_cast<double>(c));
    const double padding =
        (1.0 - (s.mean() + 1.0) / static_cast<double>(ctx + 1)) * 100.0;
    overall.add(padding);
    t.add_row({abbr, s.mean(), s.max(), s.min(), padding});
  }
  t.set_precision(1);
  bench::emit(t, "fig14_context_padding");
  std::printf("average padding across benchmarks: %.1f%% (paper: >68%%)\n",
              overall.mean());
  return 0;
}
