// Fig. 16 — cumulative effect of the data-movement optimisations on
// single-device simulation throughput. Paper (A100): 0.133 MIPS baseline ->
// 2.86 MIPS with GIC + SWIQ + CC + OI + PS (21.5x average).
#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/gpu_sim.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 50000);
  const std::string abbr = args.benchmark.empty() ? "xz" : args.benchmark;
  bench::banner("Fig. 16: optimisation stack (single device)",
                "benchmark " + abbr + ", context 111, batch N=10");

  const auto tr = core::labeled_trace(abbr, args.instructions);
  core::AnalyticPredictor pred;

  struct Step {
    const char* name;
    bool gic, swiq, cc, ps;
    device::Engine engine;
    double paper_mips;
  };
  const Step steps[] = {
      {"baseline (CPU constr., LibTorch)", false, false, false, false,
       device::Engine::kLibTorch, 0.133},
      {"+ GPU input construction (GIC)", true, false, false, false,
       device::Engine::kLibTorch, -1},
      {"+ sliding-window queue (SWIQ)", true, true, false, false,
       device::Engine::kLibTorch, -1},
      {"+ custom convolution (CC)", true, true, true, false,
       device::Engine::kLibTorch, -1},
      {"+ optimised inference (OI)", true, true, true, false,
       device::Engine::kTensorRTSparse, -1},
      {"+ pipelined simulation (PS)", true, true, true, true,
       device::Engine::kTensorRTSparse, 2.86},
  };

  Table t({"configuration", "MIPS", "speedup vs baseline", "paper MIPS"});
  double base = 0;
  for (const auto& s : steps) {
    device::Device dev;
    core::GpuSimOptions o;
    o.context_length = core::kDefaultContextLength;
    o.gpu_input_construction = s.gic;
    o.sliding_window = s.swiq;
    o.custom_conv = s.cc;
    o.engine = s.engine;
    o.pipelined = s.ps;
    core::GpuSimulator sim(pred, dev, o);
    const double mips = sim.run(tr).mips();
    if (base == 0) base = mips;
    t.add_row({std::string(s.name), mips, mips / base, s.paper_mips});
  }
  bench::emit(t, "fig16_opt_stack");
  std::printf("paper end-to-end: 0.133 -> 2.86 MIPS (21.5x)\n");
  return 0;
}
