#include "bench_util.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/parallel_sim.h"

namespace mlsim::bench {

void emit(const Table& table, const std::string& name) {
  table.print(std::cout);
  if (const char* dir = std::getenv("MLSIM_CSV_DIR"); dir != nullptr && *dir) {
    std::filesystem::create_directories(dir);
    const std::filesystem::path path = std::filesystem::path(dir) / (name + ".csv");
    std::ofstream os(path);
    if (os.is_open()) {
      table.write_csv(os);
      std::cout << "[csv written to " << path.string() << "]\n";
    }
  }
}

core::SimNetBundle trained_bundle(std::size_t window,
                                  std::size_t train_instructions) {
  std::ostringstream name;
  name << "simnet_w" << window << "_n" << train_instructions << ".bundle";
  if (artifact_exists(name.str())) {
    return core::SimNetBundle::load(artifact_path(name.str()));
  }
  std::cout << "[training SimNet bundle on {perl,gcc,bwav,namd}, window="
            << window << ", " << train_instructions << " instr/benchmark...]\n";
  std::vector<trace::EncodedTrace> traces;
  std::vector<const trace::EncodedTrace*> ptrs;
  for (const auto& abbr : trace::train_benchmarks()) {
    traces.push_back(core::labeled_trace(abbr, train_instructions));
  }
  for (const auto& t : traces) ptrs.push_back(&t);
  core::SimNetTrainConfig cfg;
  cfg.model.window = window;
  core::SimNetTrainReport report;
  core::SimNetBundle bundle = core::train_simnet(ptrs, cfg, &report);
  std::cout << "[trained: loss=" << report.final_loss
            << " holdout fetch MAPE=" << report.holdout_mape_fetch << "%]\n";
  bundle.save(artifact_path(name.str()));
  return bundle;
}

double sequential_ml_cpi(core::LatencyPredictor& pred,
                         const trace::EncodedTrace& tr, std::size_t ctx) {
  core::ParallelSimOptions o;
  o.num_subtraces = 1;
  o.context_length = ctx;
  core::ParallelSimulator sim(pred, o);
  return sim.run(tr).cpi();
}

}  // namespace mlsim::bench
