#include "bench_util.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/parallel_sim.h"
#include "obs/obs.h"

namespace mlsim::bench {

namespace {

// atexit handlers take no arguments, so the dump configuration is stashed in
// file-level state set once by enable_metrics_dump_at_exit.
bool g_dump_metrics = false;
std::string g_metrics_path;
std::string g_trace_out;

void dump_obs_at_exit() {
  if (g_dump_metrics) {
    if (g_metrics_path.empty()) {
      std::cout << "-- metrics --\n";
      obs::default_registry().write_text(std::cout);
    } else {
      std::ofstream os(g_metrics_path);
      if (os.is_open()) {
        const bool json =
            g_metrics_path.size() >= 5 &&
            g_metrics_path.rfind(".json") == g_metrics_path.size() - 5;
        if (json) {
          obs::default_registry().write_json(os);
        } else {
          obs::default_registry().write_text(os);
        }
        std::cout << "[metrics written to " << g_metrics_path << "]\n";
      } else {
        std::cerr << "cannot write metrics to " << g_metrics_path << "\n";
      }
    }
  }
  if (!g_trace_out.empty()) {
    if (obs::write_chrome_trace_file(g_trace_out)) {
      std::cout << "[trace written to " << g_trace_out << "]\n";
    } else {
      std::cerr << "cannot write trace to " << g_trace_out << "\n";
    }
  }
}

}  // namespace

void enable_metrics_dump_at_exit(bool metrics, const std::string& metrics_path,
                                 const std::string& trace_out) {
  if (!obs::kCompiledIn) {
    std::cerr << "note: built with MLSIM_OBS_DISABLE=ON; --metrics and "
                 "--trace-out will produce empty output\n";
  }
  const bool first = !g_dump_metrics && g_trace_out.empty();
  g_dump_metrics = g_dump_metrics || metrics;
  if (!metrics_path.empty()) g_metrics_path = metrics_path;
  if (!trace_out.empty()) g_trace_out = trace_out;
  obs::set_enabled(true);
  obs::reset_trace();
  if (first) std::atexit(dump_obs_at_exit);
}

void emit(const Table& table, const std::string& name) {
  table.print(std::cout);
  if (const char* dir = std::getenv("MLSIM_CSV_DIR"); dir != nullptr && *dir) {
    std::filesystem::create_directories(dir);
    const std::filesystem::path path = std::filesystem::path(dir) / (name + ".csv");
    std::ofstream os(path);
    if (os.is_open()) {
      table.write_csv(os);
      std::cout << "[csv written to " << path.string() << "]\n";
    }
  }
}

core::SimNetBundle trained_bundle(std::size_t window,
                                  std::size_t train_instructions) {
  std::ostringstream name;
  name << "simnet_w" << window << "_n" << train_instructions << ".bundle";
  if (artifact_exists(name.str())) {
    return core::SimNetBundle::load(artifact_path(name.str()));
  }
  std::cout << "[training SimNet bundle on {perl,gcc,bwav,namd}, window="
            << window << ", " << train_instructions << " instr/benchmark...]\n";
  std::vector<trace::EncodedTrace> traces;
  std::vector<const trace::EncodedTrace*> ptrs;
  for (const auto& abbr : trace::train_benchmarks()) {
    traces.push_back(core::labeled_trace(abbr, train_instructions));
  }
  for (const auto& t : traces) ptrs.push_back(&t);
  core::SimNetTrainConfig cfg;
  cfg.model.window = window;
  core::SimNetTrainReport report;
  core::SimNetBundle bundle = core::train_simnet(ptrs, cfg, &report);
  std::cout << "[trained: loss=" << report.final_loss
            << " holdout fetch MAPE=" << report.holdout_mape_fetch << "%]\n";
  artifact_commit(name.str(), [&bundle](const std::filesystem::path& p) {
    bundle.save(p);
  });
  return bundle;
}

double sequential_ml_cpi(core::LatencyPredictor& pred,
                         const trace::EncodedTrace& tr, std::size_t ctx) {
  core::ParallelSimOptions o;
  o.num_subtraces = 1;
  o.context_length = ctx;
  core::ParallelSimulator sim(pred, o);
  return sim.run(tr).cpi();
}

}  // namespace mlsim::bench
