// Observability overhead — simulation throughput (host MIPS: simulated
// instructions per wall-clock second) with the full telemetry plane active
// versus observability off (docs/OBSERVABILITY.md; not a paper figure). The
// "on" mode is the worst realistic case: metrics + span recording enabled
// AND a live /metrics scraper polling the HTTP endpoint at 10 Hz while the
// engine runs, i.e. a Prometheus scrape racing the hot loop. The bench
// asserts the throughput penalty stays under 2%, the budget that justifies
// leaving telemetry on in production. In an MLSIM_OBS_DISABLE build both
// modes run the same stripped code and the delta is pure noise.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <vector>
#include <thread>

#include "bench_util.h"
#include "common/check.h"
#include "core/analytic_predictor.h"
#include "core/parallel_sim.h"
#include "net/socket.h"
#include "obs/obs.h"
#include "obs/telemetry_http.h"
#include "uarch/ground_truth.h"

using namespace mlsim;
using Clock = std::chrono::steady_clock;

namespace {

/// One GET /metrics against the local telemetry server; result discarded.
void scrape_once(std::uint16_t port) {
  try {
    net::TcpConn conn = net::TcpConn::connect("127.0.0.1", port);
    const std::string req = "GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n";
    conn.send_all(req.data(), req.size());
    char buf[4096];
    while (conn.readable(1000)) {
      if (conn.recv_some(buf, sizeof buf) == 0) break;
    }
  } catch (const IoError&) {
    // A dropped scrape must not abort the bench; the engine is the subject.
  }
}

/// One timed run of the parallel engine, in simulated MIPS.
double one_run_mips(core::ParallelSimulator& sim,
                    const trace::EncodedTrace& tr) {
  const auto t0 = Clock::now();
  const auto res = sim.run(tr);
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return static_cast<double>(res.instructions) / secs / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 1'000'000);
  const std::string abbr = args.benchmark.empty() ? "mcf" : args.benchmark;
  bench::banner(
      "Observability overhead: host MIPS, telemetry on (10 Hz scrape) vs off",
      std::to_string(args.instructions) + " instructions of " + abbr +
          ", parallel engine, median of 5 interleaved on/off pairs; "
          "budget: < 2% slowdown" +
          (obs::kCompiledIn ? "" : " [MLSIM_OBS_DISABLE build: both modes "
                                   "run the stripped code]"));

  const trace::EncodedTrace tr = uarch::make_encoded_trace(
      trace::find_workload(abbr), args.instructions, {}, 1);
  core::ParallelSimOptions o;
  o.num_subtraces = 4;
  o.num_gpus = 2;
  o.context_length = 16;
  o.warmup = 16;
  constexpr int kReps = 5;

  // Telemetry plane: endpoint live for the whole bench; the scraper pulls
  // the full Prometheus exposition every 100 ms but only while `scraping`
  // is set, so the obs-off baseline reps run undisturbed.
  obs::set_enabled(true);
  obs::reset_trace();
  obs::TelemetryServer srv;
  const bool serving = srv.start({});
  obs::set_enabled(false);
  std::atomic<bool> stop{false}, scraping{false};
  std::thread scraper;
  std::atomic<std::uint64_t> scrapes{0};
  if (serving) {
    scraper = std::thread([&, port = srv.port()] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (scraping.load(std::memory_order_relaxed)) {
          scrape_once(port);
          scrapes.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
  }

  // Interleave the two modes rep by rep: on a busy (or single-core) host,
  // wall-clock drifts over the minutes a bench runs, and back-to-back pairs
  // cancel that drift out of the on/off ratio.
  core::AnalyticPredictor pred;
  core::ParallelSimulator sim(pred, o);
  (void)sim.run(tr);  // warmup: page in the trace, prime allocators
  double mips_off = 0.0, mips_on = 0.0;
  std::vector<double> pair_ratio;  // on/off throughput of each pair
  for (int r = 0; r < kReps; ++r) {
    obs::set_enabled(false);
    const double off = one_run_mips(sim, tr);
    obs::set_enabled(true);
    scraping.store(true, std::memory_order_relaxed);
    const double on = one_run_mips(sim, tr);
    scraping.store(false, std::memory_order_relaxed);
    obs::set_enabled(false);
    mips_off = std::max(mips_off, off);
    mips_on = std::max(mips_on, on);
    pair_ratio.push_back(on / off);
  }
  stop.store(true, std::memory_order_relaxed);
  if (scraper.joinable()) scraper.join();
  srv.stop();

  // Median pair ratio: each ratio compares back-to-back runs, and the
  // median discards the pairs a scheduling hiccup landed in.
  std::sort(pair_ratio.begin(), pair_ratio.end());
  const double overhead = 1.0 - pair_ratio[pair_ratio.size() / 2];
  Table t({"mode", "MIPS", "overhead %"});
  t.add_row({std::string("obs off"), mips_off, 0.0});
  t.add_row({std::string(serving ? "obs on + 10 Hz scrape" : "obs stripped"),
             mips_on, overhead * 100.0});
  t.set_precision(2);
  bench::emit(t, "fig_obs_overhead");
  std::printf("scrapes served: %llu\n",
              static_cast<unsigned long long>(scrapes.load()));

  check(overhead < 0.02,
        "telemetry overhead " + std::to_string(overhead * 100.0) +
            "% exceeds the 2% budget");
  std::printf("telemetry overhead %.2f%% is within the 2%% budget\n",
              overhead * 100.0);
  return 0;
}
