// Fig. 18 — parallel simulation error with accuracy recovery, per
// benchmark, for the production configuration (8 GPUs x 32k sub-traces per
// GPU over 100M instructions; scaled here to preserve the per-partition
// length ~381). Paper averages: 16% (no recovery) -> 3.4% (warmup) -> 2.3%
// (warmup + correction), error measured against the cycle-accurate
// reference.
#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/metrics.h"
#include "core/parallel_sim.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 1'000'000);
  const std::size_t ctx = core::kDefaultContextLength;
  const std::size_t per_partition = 381;  // paper: 100M / (8 * 32k)
  bench::banner("Fig. 18: parallel error with warmup / correction",
                std::to_string(args.instructions) +
                    " instructions, 8 GPUs, per-partition length ~381, error vs "
                    "sequential ML simulation");

  core::AnalyticPredictor pred;
  Table t({"benchmark", "baseline %", "warmup %", "warmup+corr %"});
  RunningStats s_base, s_warm, s_corr;
  for (const auto& abbr : bench::benchmarks_or(args, trace::test_benchmarks())) {
    const auto tr = core::labeled_trace(abbr, args.instructions);
    const double seq = bench::sequential_ml_cpi(pred, tr, ctx);
    auto err = [&](std::size_t warmup, bool corr) {
      core::ParallelSimOptions o;
      o.num_subtraces = std::max<std::size_t>(8, tr.size() / per_partition);
      o.num_gpus = 8;
      o.context_length = ctx;
      o.warmup = warmup;
      o.post_error_correction = corr;
      o.correction_limit = 100;
      core::ParallelSimulator sim(pred, o);
      return std::abs(
          core::ParallelSimulator::cpi_error_percent(seq, sim.run(tr).cpi()));
    };
    const double base = err(0, false);
    const double warm = err(ctx, false);
    const double corr = err(ctx, true);
    s_base.add(base);
    s_warm.add(warm);
    s_corr.add(corr);
    t.add_row({abbr, base, warm, corr});
  }
  t.add_row({std::string("AVG"), s_base.mean(), s_warm.mean(), s_corr.mean()});
  t.set_precision(2);
  bench::emit(t, "fig18_recovery_error");
  std::printf("paper averages: 16%% -> 3.4%% -> 2.3%%\n");
  return 0;
}
