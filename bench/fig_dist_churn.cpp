// Elastic-cluster churn study (docs/DISTRIBUTED.md "Elasticity & churn", no
// paper counterpart): what membership churn costs the coordinator/worker
// cluster, and what the content-addressed result cache buys on repeated
// work.
//
// Part 1 — churn resilience: the same run with a stable 4-worker fleet vs a
// fleet where one worker process is SIGKILLed at ~50% shard completion and
// a fresh replacement joins mid-run. The acceptance bar is wall-clock under
// 2x the no-churn baseline with the merged CPI still bit-identical (the
// lost shard is reassigned; the joiner absorbs backlog).
//
// Part 2 — result-cache hit rate vs repeated-workload mix: after a warming
// run, a sweep of runs where 0% / 50% / 100% of them repeat the warmed
// workload byte-for-byte. Repeated runs are served from the cache without
// dispatching a single shard; the acceptance bar is a >= 90% hit rate on
// the fully repeated mix.
#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/parallel_sim.h"
#include "dist/coordinator.h"
#include "dist/worker.h"
#include "net/socket.h"

using namespace mlsim;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

core::ParallelSimOptions config(std::size_t parts, std::size_t gpus) {
  core::ParallelSimOptions o;
  o.num_subtraces = parts;
  o.num_gpus = gpus;
  o.context_length = 64;
  o.warmup = 64;
  o.post_error_correction = true;
  return o;
}

/// Fork a real worker process (the churn scenario needs something a SIGKILL
/// can actually kill). `delay_ms` delays the connect — a mid-run joiner.
pid_t fork_worker(std::uint16_t port, int delay_ms = 0) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  dist::WorkerConfig cfg;
  cfg.port = port;
  cfg.heartbeat_ms = 50;
  try {
    dist::run_worker(cfg);
    _exit(0);
  } catch (...) {
    _exit(1);
  }
}

void reap(const std::vector<pid_t>& pids) {
  int status = 0;
  for (const pid_t p : pids) waitpid(p, &status, 0);
}

dist::CoordinatorOptions cluster_options() {
  dist::CoordinatorOptions co;
  co.min_workers = 4;
  co.poll_ms = 2;
  co.heartbeat_timeout_ms = 500;
  return co;
}

std::thread worker_thread(std::uint16_t port) {
  return std::thread([port] {
    dist::WorkerConfig cfg;
    cfg.port = port;
    cfg.heartbeat_ms = 100;
    try {
      dist::run_worker(cfg);
    } catch (const IoError&) {
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 200'000);
  const std::size_t parts = 32, gpus = 16;  // 16 shards of 2 partitions
  const std::string abbr = args.benchmark.empty() ? "xz" : args.benchmark;
  bench::banner(
      "Cluster churn + result cache: kill/join mid-run, repeated-run memoization",
      abbr + ", " + std::to_string(args.instructions) + " instructions, " +
          std::to_string(parts) + " sub-traces, " + std::to_string(gpus) +
          " GPU blocks");

  const auto tr = core::labeled_trace(abbr, args.instructions);
  const core::ParallelSimOptions opts = config(parts, gpus);
  core::AnalyticPredictor pred;
  core::ParallelSimulator local_sim(pred, opts);
  const auto local = local_sim.run(tr);

  // ---- part 1: churn resilience --------------------------------------------

  // No-churn baseline: a stable fleet of 4 worker processes.
  double base_s = 0.0;
  bool base_identical = false;
  {
    dist::DistCoordinator coord(net::TcpListener::bind(0), cluster_options());
    std::vector<pid_t> pids;
    for (int i = 0; i < 4; ++i) pids.push_back(fork_worker(coord.port()));
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = coord.run(tr, opts);
    base_s = seconds_since(t0);
    base_identical = out.total_cycles == local.total_cycles;
    coord.shutdown_workers();
    reap(pids);
  }

  // Churn: SIGKILL one of the four at ~50% completion (watched through the
  // thread-safe stats() snapshot), while a pre-forked fifth worker connects
  // mid-run as the replacement.
  double churn_s = 0.0;
  bool churn_identical = false;
  std::size_t reassigned = 0, joined = 0, lost = 0;
  {
    dist::DistCoordinator coord(net::TcpListener::bind(0), cluster_options());
    std::vector<pid_t> pids;
    for (int i = 0; i < 4; ++i) pids.push_back(fork_worker(coord.port()));
    const int join_delay_ms =
        std::max(50, static_cast<int>(base_s * 1000.0 / 2.0));
    pids.push_back(fork_worker(coord.port(), join_delay_ms));
    const pid_t victim = pids.front();
    std::thread killer([&coord, victim] {
      for (int i = 0; i < 10000; ++i) {
        if (coord.stats().shards_completed >= 8) break;  // ~50% of 16
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      kill(victim, SIGKILL);
    });
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = coord.run(tr, opts);
    churn_s = seconds_since(t0);
    killer.join();
    churn_identical = out.total_cycles == local.total_cycles;
    reassigned = coord.stats().reassignments;
    joined = coord.stats().workers_joined;
    lost = coord.stats().workers_lost;
    coord.shutdown_workers();
    reap(pids);
  }

  Table churn({"scenario", "workers", "wall s", "vs baseline", "joined",
               "lost", "reassigned", "bit-identical"});
  churn.add_row({std::string("stable fleet"), std::string("4"), base_s, 1.0,
                 static_cast<std::int64_t>(4), static_cast<std::int64_t>(0),
                 static_cast<std::int64_t>(0),
                 std::string(base_identical ? "yes" : "NO")});
  churn.add_row({std::string("kill@50% + join"), std::string("4-1+1"), churn_s,
                 base_s > 0.0 ? churn_s / base_s : 0.0,
                 static_cast<std::int64_t>(joined),
                 static_cast<std::int64_t>(lost),
                 static_cast<std::int64_t>(reassigned),
                 std::string(churn_identical ? "yes" : "NO")});
  churn.set_precision(3);
  bench::emit(churn, "fig_dist_churn");

  // ---- part 2: result-cache hit rate vs repeated-workload mix --------------

  // Each mix row: warm the cache with workload A, then run a sweep where
  // `mix`% of the runs repeat A exactly and the rest are fresh workloads
  // (different trace length -> different run fingerprint, no false hits).
  const std::size_t cache_parts = 16, cache_gpus = 8;  // 8 shards
  const core::ParallelSimOptions copts = config(cache_parts, cache_gpus);
  const std::size_t sweep_runs = 4;
  Table cache_tbl({"repeat mix %", "sweep runs", "shards", "dispatched",
                   "cache hits", "hit rate %"});
  double full_repeat_hit_rate = 0.0;
  for (const int mix : {0, 50, 100}) {
    dist::CoordinatorOptions co;
    co.min_workers = 2;
    co.poll_ms = 2;
    co.heartbeat_timeout_ms = 2000;
    co.result_cache_entries = 256;
    dist::DistCoordinator coord(net::TcpListener::bind(0), co);
    std::thread w1 = worker_thread(coord.port());
    std::thread w2 = worker_thread(coord.port());

    const auto warm_tr = core::labeled_trace(abbr, args.instructions / 4);
    (void)coord.run(warm_tr, copts);  // warms the cache with workload A
    const auto before = coord.stats();
    std::size_t repeats_left = sweep_runs * static_cast<std::size_t>(mix) / 100;
    for (std::size_t r = 0; r < sweep_runs; ++r) {
      if (repeats_left > 0) {
        --repeats_left;
        (void)coord.run(warm_tr, copts);  // byte-identical repeat of A
      } else {
        // Fresh workload: a different slice length addresses new content.
        const auto fresh =
            core::labeled_trace(abbr, args.instructions / 4 + 512 * (r + 1));
        (void)coord.run(fresh, copts);
      }
    }
    const auto after = coord.stats();
    const std::size_t shards = sweep_runs * 8;
    const std::size_t hits = after.cache_hits - before.cache_hits;
    const std::size_t dispatched =
        after.shards_dispatched - before.shards_dispatched;
    const double rate =
        100.0 * static_cast<double>(hits) / static_cast<double>(shards);
    if (mix == 100) full_repeat_hit_rate = rate;
    cache_tbl.add_row({static_cast<std::int64_t>(mix),
                       static_cast<std::int64_t>(sweep_runs),
                       static_cast<std::int64_t>(shards),
                       static_cast<std::int64_t>(dispatched),
                       static_cast<std::int64_t>(hits), rate});
    coord.shutdown_workers();
    w1.join();
    w2.join();
  }
  cache_tbl.set_precision(1);
  bench::emit(cache_tbl, "fig_dist_churn_cache");

  std::printf(
      "acceptance bar: kill@50%%+join completes under 2.0x the stable-fleet "
      "wall clock (measured %.2fx) with a bit-identical merge, and the 100%% "
      "repeated mix is served >= 90%% from the result cache (measured "
      "%.0f%%, zero dispatch expected)\n",
      base_s > 0.0 ? churn_s / base_s : 0.0, full_repeat_hit_rate);
  return 0;
}
