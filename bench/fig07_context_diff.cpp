// Fig. 7 — instruction-wise context and prediction differences between the
// sequential and the 4-way-partitioned parallel simulation (xz, 25k
// instructions). The paper plots the per-instruction difference series; we
// print per-partition summaries plus samples around each boundary showing
// the error burst at partition heads and its decay.
#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/parallel_sim.h"

using namespace mlsim;

namespace {
std::int64_t pred_total(const core::LatencyPrediction& p) {
  return static_cast<std::int64_t>(p.fetch) + p.exec + p.store;
}
}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 25000);
  const std::string abbr = args.benchmark.empty() ? "xz" : args.benchmark;
  const std::size_t ctx = 64;
  const std::size_t parts = 4;
  bench::banner("Fig. 7: context / prediction difference with 4 sub-traces",
                "benchmark " + abbr + ", " + std::to_string(args.instructions) +
                    " instructions");

  const auto tr = core::labeled_trace(abbr, args.instructions);
  core::AnalyticPredictor pred;

  core::ParallelSimOptions seq_o;
  seq_o.num_subtraces = 1;
  seq_o.context_length = ctx;
  seq_o.record_predictions = true;
  seq_o.record_context_counts = true;
  const auto seq = core::ParallelSimulator(pred, seq_o).run(tr);

  core::ParallelSimOptions par_o = seq_o;
  par_o.num_subtraces = parts;
  const auto par = core::ParallelSimulator(pred, par_o).run(tr);

  Table t({"partition", "begin", "ctx-diff insts", "first ctx match", "pred-diff insts",
           "sum |pred diff| (cycles)"});
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t b = par.boundaries[p], e = par.boundaries[p + 1];
    std::size_t ctx_diff = 0, pred_diff = 0;
    std::int64_t sum_abs = 0;
    std::size_t first_match = e;
    for (std::size_t i = b; i < e; ++i) {
      const bool cd = seq.context_counts[i] != par.context_counts[i];
      ctx_diff += cd;
      if (!cd && first_match == e) first_match = i;
      const std::int64_t d = pred_total(seq.predictions[i]) - pred_total(par.predictions[i]);
      pred_diff += d != 0;
      sum_abs += std::abs(d);
    }
    t.add_row({static_cast<std::int64_t>(p), static_cast<std::int64_t>(b),
               static_cast<std::int64_t>(ctx_diff),
               static_cast<std::int64_t>(first_match - b),
               static_cast<std::int64_t>(pred_diff), sum_abs});
  }
  bench::emit(t, "fig07_context_diff");

  // Boundary close-ups: context counts for the first few instructions of
  // partitions 1..3 (sequential vs parallel).
  std::cout << "boundary close-up (seq-ctx/par-ctx for first 8 instructions):\n";
  for (std::size_t p = 1; p < parts; ++p) {
    const std::size_t b = par.boundaries[p];
    std::printf("  partition %zu:", p);
    for (std::size_t i = b; i < b + 8 && i < tr.size(); ++i) {
      std::printf(" %u/%u", seq.context_counts[i], par.context_counts[i]);
    }
    std::printf("\n");
  }
  std::printf("paper shape: context difference spikes at each boundary; "
              "prediction differences persist for some consecutive "
              "instructions, then trend down.\n");
  return 0;
}
