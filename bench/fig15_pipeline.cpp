// Fig. 15 — time to copy a batch of N instructions vs. time to simulate
// them on the device, as N grows. Paper: copy 0.45 us / simulate 0.30 us at
// N=1; the copy grows sublinearly (throughput-oriented NVLink), so the
// curves cross around N = 3 — beyond that the pipelined copy is fully
// hidden. (The production N = 10 comes from the sliding-window study.)
#include "bench_util.h"
#include "core/cost_model.h"

using namespace mlsim;

int main(int argc, char** argv) {
  (void)bench::Args::parse(argc, argv, 0);
  bench::banner("Fig. 15: batched copy vs simulation time");

  core::CostModel cm;
  const std::size_t flops = core::simnet3c2f_flops(112);
  auto sim_time = [&](std::size_t n) {
    // Per-instruction device work with the full optimisation stack.
    return static_cast<double>(n) *
           (cm.custom_conv_construct_us(10) + cm.gpu_update_retire_us +
            cm.inference_us(device::Engine::kTensorRTSparse, flops, 1, true, 0.32));
  };

  Table t({"N", "copy us", "simulate us", "copy hidden?"});
  std::size_t sweet = 0;
  for (std::size_t n = 1; n <= 16; ++n) {
    const double copy = cm.gpu.h2d_time_us(n * core::CostModel::row_bytes());
    const double sim = sim_time(n);
    if (sweet == 0 && copy <= sim) sweet = n;
    t.add_row({static_cast<std::int64_t>(n), copy, sim,
               std::string(copy <= sim ? "yes" : "no")});
  }
  t.set_precision(3);
  bench::emit(t, "fig15_pipeline");
  std::printf("crossover (copy fully hidden) at N = %zu (paper: N = 3; "
              "production batch N = 10 from Fig. 12)\n", sweet);
  return 0;
}
