// Fig. 12 — average input-construction time vs. the sliding-window batch
// size N. Paper: decreases with N, ~0.21 us/inst at the chosen N = 10
// (diminishing returns beyond, at growing memory cost).
#include "bench_util.h"
#include "core/cost_model.h"

using namespace mlsim;

int main(int argc, char** argv) {
  (void)bench::Args::parse(argc, argv, 0);
  bench::banner("Fig. 12: input-construction time vs sliding-window N");

  core::CostModel cm;
  Table t({"N", "construction us/inst", "queue memory (rows)"});
  for (std::size_t n : {1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20}) {
    t.add_row({static_cast<std::int64_t>(n), cm.swiq_construct_us(n),
               static_cast<std::int64_t>(core::kDefaultContextLength + 1 + n)});
  }
  bench::emit(t, "fig12_sliding_window");
  std::printf("paper: 0.33 us/inst (gather kernel) -> 0.21 us/inst at N=10; "
              "N=10 chosen since larger N only adds memory.\n");
  std::printf("this repo at N=10: %.3f us/inst\n", cm.swiq_construct_us(10));
  return 0;
}
