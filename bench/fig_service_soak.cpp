// Service soak — resilient-service throughput and outcome mix as the fault
// rate rises (docs/SERVICE.md; not a paper figure). One burst of
// mixed-priority parallel requests per fault level; the rows show the cost
// of chaos: requests complete, get shed/deadline-failed/hang-failed typed,
// the watchdog requeues, the breaker degrades — and every completed request
// still reports the fault-free CPI (asserted, not just printed).
#include <chrono>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "core/analytic_predictor.h"
#include "core/parallel_sim.h"
#include "device/fault.h"
#include "service/service.h"
#include "uarch/ground_truth.h"

using namespace mlsim;
using namespace std::chrono_literals;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 20'000);
  const std::string abbr = args.benchmark.empty() ? "mcf" : args.benchmark;
  constexpr int kRequests = 24;
  bench::banner("Service soak: outcome mix vs fault rate",
                std::to_string(kRequests) + " parallel requests over " +
                    std::to_string(args.instructions) + " instructions of " +
                    abbr + "; kill = corrupt = straggler = rate");

  const trace::EncodedTrace tr = uarch::make_encoded_trace(
      trace::find_workload(abbr), args.instructions, {}, 1);
  core::AnalyticPredictor primary, fallback;

  core::ParallelSimOptions ref_opts;
  ref_opts.num_subtraces = 4;
  ref_opts.context_length = 16;  // service Request default
  ref_opts.warmup = ref_opts.context_length;
  ref_opts.post_error_correction = true;
  const auto want = core::ParallelSimulator(primary, ref_opts).run(tr);

  Table t({"fault rate", "completed", "rejected", "deadline", "hung",
           "requeues", "degraded", "breaker trips", "wall ms"});
  for (const double rate : {0.0, 0.1, 0.2, 0.4}) {
    device::FaultOptions fo;
    fo.seed = 22;
    fo.device_kill_rate = rate;
    fo.output_corrupt_rate = rate;
    fo.straggler_rate = rate;
    const device::FaultInjector inj(fo);

    service::ServiceOptions so;
    so.num_workers = 3;
    so.queue_capacity = 12;
    so.hang_timeout = 60ms;
    so.watchdog_interval = 10ms;
    so.max_hang_requeues = 2;
    service::SimulationService svc(primary, fallback, so);

    const auto start = std::chrono::steady_clock::now();
    std::vector<service::SimulationService::Ticket> tickets;
    for (int i = 0; i < kRequests; ++i) {
      service::Request rq;
      rq.trace = &tr;
      rq.engine = service::EngineKind::kParallel;
      rq.priority = static_cast<service::Priority>(i % service::kNumPriorities);
      rq.num_subtraces = ref_opts.num_subtraces;
      if (rate > 0.0) {
        rq.faults = &inj;
        rq.straggler_stall = 120ms;       // a flagged attempt really hangs
        if (i % 6 == 5) rq.deadline = 40ms;
      }
      tickets.push_back(svc.submit(std::move(rq)));
    }
    for (auto& tk : tickets) {
      const service::Response r = tk.future.get();
      if (r.ok()) {
        check(r.total_cycles == want.total_cycles,
              "chaos must never change a completed request's cycles");
      }
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  start)
            .count();
    const auto st = svc.stats();
    t.add_row({rate, static_cast<double>(st.completed),
               static_cast<double>(st.rejected()),
               static_cast<double>(st.deadline_exceeded),
               static_cast<double>(st.hung), static_cast<double>(st.hang_requeues),
               static_cast<double>(st.degraded),
               static_cast<double>(svc.breaker_trips()), wall_ms});
  }
  t.set_precision(1);
  bench::emit(t, "fig_service_soak");
  std::printf("completed requests are cycle-identical to the fault-free run\n");
  return 0;
}
