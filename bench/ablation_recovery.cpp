// Ablation — accuracy-recovery design choices (DESIGN.md): how the paper's
// two knobs behave off their chosen values:
//   - warmup length W (paper fixes W = context_length: enough to fill the
//     context space, no inter-partition communication needed);
//   - post-error-correction re-simulation limit (paper: 100 instructions).
#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/error_analysis.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 200000);
  const std::string abbr = args.benchmark.empty() ? "mcf" : args.benchmark;
  const std::size_t ctx = core::kDefaultContextLength;
  const std::size_t parts = 256;
  bench::banner("Ablation: warmup length and correction limit",
                "benchmark " + abbr + ", " + std::to_string(args.instructions) +
                    " instructions, " + std::to_string(parts) + " sub-traces");

  const auto tr = core::labeled_trace(abbr, args.instructions);
  core::AnalyticPredictor pred;
  const double seq = bench::sequential_ml_cpi(pred, tr, ctx);

  auto err = [&](std::size_t warmup, bool corr, std::size_t limit) {
    core::ParallelSimOptions o;
    o.num_subtraces = parts;
    o.context_length = ctx;
    o.warmup = warmup;
    o.post_error_correction = corr;
    o.correction_limit = limit;
    core::ParallelSimulator sim(pred, o);
    const auto res = sim.run(tr);
    return std::pair<double, std::size_t>{
        std::abs(core::ParallelSimulator::cpi_error_percent(seq, res.cpi())),
        res.warmup_instructions + res.corrected_instructions};
  };

  std::cout << "(a) warmup length sweep (no correction)\n";
  Table tw({"warmup W", "error %", "redundant work %"});
  for (const std::size_t w :
       {std::size_t{0}, ctx / 4, ctx / 2, ctx, 2 * ctx}) {
    const auto [e, extra] = err(w, false, 100);
    tw.add_row({std::to_string(w) + (w == ctx ? " (=ctx, paper)" : ""), e,
                100.0 * static_cast<double>(extra) /
                    static_cast<double>(args.instructions)});
  }
  tw.set_precision(3);
  bench::emit(tw, "ablation_recovery_tw");

  std::cout << "(b) correction limit sweep (warmup = ctx)\n";
  Table tc({"correction limit", "error %", "redundant work %"});
  for (const std::size_t lim : {std::size_t{0}, std::size_t{25}, std::size_t{50},
                                std::size_t{100}, std::size_t{200}}) {
    const auto [e, extra] = lim == 0 ? err(ctx, false, 100) : err(ctx, true, lim);
    tc.add_row({std::to_string(lim) + (lim == 100 ? " (paper)" : ""), e,
                100.0 * static_cast<double>(extra) /
                    static_cast<double>(args.instructions)});
  }
  tc.set_precision(3);
  bench::emit(tc, "ablation_recovery_tc");

  std::printf("design-choice takeaway: W = context_length captures nearly all "
              "the warmup benefit; beyond it only redundant work grows. The "
              "correction limit saturates similarly near the paper's 100.\n");
  return 0;
}
