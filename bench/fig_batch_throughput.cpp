// Batch throughput — aggregate modeled inference throughput of K concurrent
// narrow requests through the service, continuous batching off vs on
// (docs/BATCHING.md; not a paper figure). A single narrow request can never
// fill the batch dimension the paper's speedup lives in; this bench shows the
// cross-request scheduler recovering it: as the concurrent-request count
// grows, the scheduler coalesces one window from each request into one
// inference call, and aggregate modeled MIPS scales with the batch size while
// the unbatched path pays the per-call overhead per window. Batching must not
// change results: every completed request's cycles are asserted identical
// across the two modes, and a direct engine-level run checks per-instruction
// predictions byte for byte.
#include <chrono>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "core/analytic_predictor.h"
#include "core/sequential_sim.h"
#include "service/batcher.h"
#include "service/service.h"
#include "uarch/ground_truth.h"

using namespace mlsim;
using namespace std::chrono_literals;

namespace {

/// Run K concurrent sequential requests; returns per-request total cycles.
std::vector<std::uint64_t> run_burst(core::LatencyPredictor& primary,
                                     core::LatencyPredictor& fallback,
                                     const trace::EncodedTrace& tr,
                                     std::size_t k, bool batching,
                                     service::BatchScheduler::Stats* bstats) {
  service::ServiceOptions so;
  so.num_workers = k;
  so.queue_capacity = k + 4;
  so.batching = batching;
  so.batcher.max_batch = 64;
  so.batcher.max_wait = 50us;
  service::SimulationService svc(primary, fallback, so);

  std::vector<service::SimulationService::Ticket> tickets;
  tickets.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    service::Request rq;
    rq.trace = &tr;
    rq.engine = service::EngineKind::kSequential;
    rq.context_length = 16;  // narrow: worthless batch on its own
    tickets.push_back(svc.submit(std::move(rq)));
  }
  std::vector<std::uint64_t> cycles;
  cycles.reserve(k);
  for (auto& t : tickets) {
    const service::Response r = t.future.get();
    check(r.ok(), "burst request failed: " + r.error);
    cycles.push_back(r.total_cycles);
  }
  if (bstats != nullptr) *bstats = svc.batcher()->stats();
  return cycles;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 3'000);
  const std::string abbr = args.benchmark.empty() ? "mcf" : args.benchmark;
  bench::banner("Batch throughput: aggregate modeled MIPS vs concurrency",
                "K concurrent sequential requests (context 16) over " +
                    std::to_string(args.instructions) + " instructions of " +
                    abbr + "; batcher max_batch=64, max_wait=50us");

  const trace::EncodedTrace tr = uarch::make_encoded_trace(
      trace::find_workload(abbr), args.instructions, {}, 1);
  core::AnalyticPredictor primary, fallback;

  // Engine-level bit-identity: the same request through a standalone
  // scheduler channel produces byte-identical per-instruction predictions.
  core::SequentialSimOptions seq;
  seq.context_length = 16;
  seq.record_predictions = true;
  const auto plain = core::SequentialSimulator(primary, seq).run(tr);
  {
    service::BatchScheduler sched({&primary});
    CancelSource src;
    const auto chan = sched.open(1, src.token());
    core::SequentialSimOptions batched_opts = seq;
    batched_opts.batch_sink = chan.get();
    const auto batched = core::SequentialSimulator(primary, batched_opts).run(tr);
    check(batched.predictions == plain.predictions,
          "batched predictions must be bit-identical to unbatched");
    check(batched.cycles == plain.cycles,
          "batched cycles must equal unbatched cycles");
  }

  Table t({"requests", "windows", "mean batch", "batched us", "unbatched us",
           "batched MIPS", "unbatched MIPS", "speedup"});
  for (const std::size_t k : {1, 2, 4, 8, 16, 32}) {
    const auto off = run_burst(primary, fallback, tr, k, false, nullptr);
    service::BatchScheduler::Stats bs;
    const auto on = run_burst(primary, fallback, tr, k, true, &bs);
    check(on == off, "batching changed a request's cycles");

    const double windows = static_cast<double>(bs.items_predicted);
    const double mean_batch =
        bs.flushes > 0 ? windows / static_cast<double>(bs.flushes) : 0.0;
    // MIPS over the modeled inference time (instructions / µs): the modeled
    // batched cost charges each flush one amortised inference call; the
    // unbatched cost charges every window a full call, exactly what the
    // engines charge with batching off.
    const double batched_mips =
        bs.modeled_batched_us > 0.0 ? windows / bs.modeled_batched_us : 0.0;
    const double unbatched_mips =
        bs.modeled_unbatched_us > 0.0 ? windows / bs.modeled_unbatched_us : 0.0;
    t.add_row({static_cast<std::int64_t>(k), windows, mean_batch,
               bs.modeled_batched_us, bs.modeled_unbatched_us, batched_mips,
               unbatched_mips,
               unbatched_mips > 0.0 ? batched_mips / unbatched_mips : 0.0});
  }
  t.set_precision(2);
  bench::emit(t, "fig_batch_throughput");
  std::printf("per-request cycles are identical with batching on and off\n");
  return 0;
}
