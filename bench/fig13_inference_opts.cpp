// Fig. 13 — inference time per optimisation step: LibTorch -> TensorRT ->
// +half precision -> +2:4 sparsity. Paper (A100, 3.19 MFLOP inference):
// 1.0 -> 0.34 -> 0.26 -> 0.22 us/instruction.
//
// The accuracy side of fp16 + 2:4 is exercised for real: a trained model is
// quantised/pruned and its end-to-end CPI error compared (paper reports
// "negligible accuracy loss").
#include "bench_util.h"
#include "core/simnet_trainer.h"
#include "tensor/quant.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 2000);
  bench::banner("Fig. 13: inference optimisation ladder");

  const device::GpuSpec a100 = device::GpuSpec::a100();
  const std::size_t flops = core::simnet3c2f_flops(112);

  Table t({"engine", "us/inference (model)", "paper us"});
  using device::Engine;
  t.add_row({std::string("LibTorch"),
             a100.inference_time_us(Engine::kLibTorch, flops), 1.00});
  t.add_row({std::string("TensorRT"),
             a100.inference_time_us(Engine::kTensorRT, flops), 0.34});
  t.add_row({std::string("TensorRT + fp16"),
             a100.inference_time_us(Engine::kTensorRTHalf, flops), 0.26});
  t.add_row({std::string("TensorRT + fp16 + 2:4"),
             a100.inference_time_us(Engine::kTensorRTSparse, flops), 0.22});
  bench::emit(t, "fig13_inference_opts");

  // Real numeric effect of fp16 + 2:4 on a trained model. The 2:4 recipe
  // requires sparse fine-tuning (projected training) to hold accuracy —
  // the compressed bundle is cached after the first run.
  core::SimNetBundle fp32 = bench::trained_bundle();
  core::SimNetBundle compressed = [&] {
    const std::string name = "simnet_w33_n30000_24sparse.bundle";
    if (artifact_exists(name)) return core::SimNetBundle::load(artifact_path(name));
    std::printf("[2:4 fine-tuning (projected training, 1 epoch)...]\n");
    core::SimNetBundle b = bench::trained_bundle();
    std::vector<trace::EncodedTrace> traces;
    for (const auto& abbr : trace::train_benchmarks()) {
      traces.push_back(core::labeled_trace(abbr, 30000));
    }
    std::vector<const trace::EncodedTrace*> ptrs;
    for (const auto& t : traces) ptrs.push_back(&t);
    core::finetune_2to4(b, ptrs);
    tensor::quantize_model_half(b.model);
    b.save(artifact_path(name));
    return b;
  }();

  const auto test = core::labeled_trace("xz", std::max<std::size_t>(args.instructions, 2000));
  const float loss32 = core::evaluate_loss(fp32, test, args.instructions);
  const float lossc = core::evaluate_loss(compressed, test, args.instructions);
  std::printf("accuracy cost of fp16 + 2:4 after sparse fine-tuning (real "
              "arithmetic, unseen benchmark): prediction loss %.4f -> %.4f "
              "(paper: negligible)\n",
              static_cast<double>(loss32), static_cast<double>(lossc));
  std::printf("conv1 weight sparsity after 2:4: %.1f%%\n",
              tensor::sparsity(compressed.model.conv1().weight()) * 100.0);
  return 0;
}
