// Fig. 2 — profile of a single iteration of sequential simulation.
//
// Reproduces the per-step breakdown of the unoptimised SimNet flow (four
// redundant copies + LibTorch inference + update/retire). The paper profiles
// the Python SimNet stack on DGX-A100 (772 µs/instruction, 71% inference);
// this repository's baseline is the same data path in C++ with modeled
// device costs, so the absolute total is smaller while the structure — the
// inference share and the dominance of redundant movement in the rest —
// matches. Both are shown.
#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/sequential_sim.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 20000);
  const std::string abbr = args.benchmark.empty() ? "mcf" : args.benchmark;
  bench::banner("Fig. 2: sequential simulation step profile",
                "benchmark " + abbr + ", " + std::to_string(args.instructions) +
                    " instructions, context 111, LibTorch engine");

  const auto tr = core::labeled_trace(abbr, args.instructions);
  core::AnalyticPredictor pred;
  core::SequentialSimOptions opts;
  opts.context_length = core::kDefaultContextLength;
  core::SequentialSimulator sim(pred, opts);
  const core::SimOutput out = sim.run(tr);

  const auto& p = out.profile;
  const double total = p.total();
  Table t({"step", "us/inst (this repo)", "% (this repo)", "paper share"});
  auto row = [&](const char* name, double us, const char* paper) {
    t.add_row({std::string(name), us, us / total * 100.0, std::string(paper)});
  };
  row("1: trace -> instruction queue", p.queue_push, "incl. below");
  row("2: queue -> padded input (copy)", p.input_construct, "~70% of non-inference");
  row("3: input -> GPU (H2D)", p.h2d, "  (redundant data");
  row("4: transpose on GPU", p.transpose, "   movement)");
  row("inference (LibTorch)", p.inference, "71% of total");
  row("update + retire", p.update_retire, "remainder");
  t.add_row({std::string("TOTAL"), total, 100.0, std::string("772 us (Python stack)")});
  bench::emit(t, "fig02_seq_profile");

  std::printf("throughput: %.4f MIPS (paper Python SimNet: 0.0013 MIPS; "
              "paper gem5: 0.198 MIPS)\n", out.mips());
  std::printf("inference share: %.1f%% (paper: 71%%)\n",
              p.inference / total * 100.0);
  return 0;
}
