// Sweep-engine DSE throughput (docs/SWEEPS.md, no paper counterpart):
// points/sec of a 16-point config lattice (4 L2 sizes x 4 L1D replacement
// policies) fanned out through the distributed coordinator as the worker
// fleet grows 1 -> 8, with the content-addressed result cache enabled.
//
// Each row sweeps a fresh seed cold (per-point trace generation through
// the ground-truth OoO model plus real shard dispatch — the dispatching
// run is also what integrates newly joined workers, since the coordinator
// handshakes inside run()'s event loop) and then re-sweeps the identical
// lattice. The re-sweep is served by both caches: traces come from the
// disk artifact cache instead of re-simulating, and because one sweep
// point is one run fingerprint, every shard hits the coordinator's result
// cache — ZERO dispatched. That cache-assisted re-sweep is the headline
// number: iterating on a DSE study (sweep, stare at the frontier, tweak
// one axis, sweep again) repays only the new points. The dispatched/
// cache-hit columns make the mechanism explicit, and bit-identical cycles
// per point between the cold and cached sweeps show the caches return
// exactly what the cold run computed.
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/simulator.h"
#include "dist/coordinator.h"
#include "dist/worker.h"
#include "net/socket.h"
#include "sweep/sweep.h"

using namespace mlsim;

int main(int argc, char** argv) {
  // Isolate the trace artifact cache per invocation: the cold rows must be
  // cold even when this bench (or another) already generated these traces.
  const std::string adir =
      "mlsim-artifacts/sweep-dse-" + std::to_string(::getpid());
  ::setenv("MLSIM_ARTIFACT_DIR", adir.c_str(), 1);

  const auto args = bench::Args::parse(argc, argv, 100'000);
  const std::string abbr = args.benchmark.empty() ? "xz" : args.benchmark;
  bench::banner(
      "Sweep DSE throughput: 16-point lattice vs workers, result cache on",
      abbr + ", " + std::to_string(args.instructions) +
          " instructions/point; l2.size_kb x l1d.replacement, 16 shards/point");

  sweep::SweepSpec spec;
  spec.benchmark = abbr;
  spec.instructions = args.instructions;
  spec.axes.push_back({"l2.size_kb", {"256", "512", "1024", "2048"}});
  spec.axes.push_back({"l1d.replacement", {"lru", "dip", "drrip", "arc"}});

  dist::CoordinatorOptions co;
  co.min_workers = 1;
  co.poll_ms = 2;
  co.result_cache_entries = 4096;
  dist::DistCoordinator coord(net::TcpListener::bind(0), co);
  std::vector<std::thread> ws;
  const auto add_worker = [&ws, port = coord.port()] {
    ws.emplace_back([port] {
      dist::WorkerConfig cfg;
      cfg.port = port;
      cfg.heartbeat_ms = 100;
      try {
        dist::run_worker(cfg);
      } catch (const IoError&) {
      }
    });
  };
  add_worker();

  sweep::SweepOptions so;
  so.num_subtraces = 32;
  so.num_gpus = 16;  // 16 shards of 2 partitions: full-fleet fan-out
  so.context_length = 64;
  so.remote = &coord;

  Table t({"workers", "cold points/s", "re-sweep points/s",
           "re-sweep dispatched", "re-sweep cache hits", "bit-identical"});
  double cold1 = 0.0, re8 = 0.0;
  std::size_t re8_dispatched = 1;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    while (ws.size() < workers) add_worker();
    so.seed = workers;  // fresh fingerprints: this row's cold sweep computes
    const sweep::SweepReport cold = sweep::run_sweep(spec, so);
    const dist::CoordinatorStats before = coord.stats();
    const sweep::SweepReport cached = sweep::run_sweep(spec, so);
    const dist::CoordinatorStats after = coord.stats();

    bool identical = cold.points.size() == cached.points.size();
    for (std::size_t i = 0; identical && i < cold.points.size(); ++i) {
      identical = cold.points[i].total_cycles == cached.points[i].total_cycles;
    }
    const std::size_t dispatched =
        after.shards_dispatched - before.shards_dispatched;
    if (workers == 1) cold1 = cold.points_per_sec;
    if (workers == 8) {
      re8 = cached.points_per_sec;
      re8_dispatched = dispatched;
    }
    t.add_row({static_cast<std::int64_t>(workers), cold.points_per_sec,
               cached.points_per_sec, static_cast<std::int64_t>(dispatched),
               static_cast<std::int64_t>(after.cache_hits - before.cache_hits),
               std::string(identical ? "yes" : "NO")});
  }
  coord.shutdown_workers();
  for (auto& w : ws) w.join();
  std::filesystem::remove_all(adir);

  t.set_precision(1);
  bench::emit(t, "fig_sweep_dse");
  const bool speedup_ok = cold1 > 0.0 && re8 / cold1 >= 4.0;
  std::printf(
      "acceptance bar: the re-swept lattice dispatches zero shards (%s) and "
      "8-worker re-sweep points/s is >=4x the 1-worker cold sweep "
      "(%.1fx: %s)\n"
      "(the speedup is cache-assisted: every repeated point is one run "
      "fingerprint the result cache serves without dispatching)\n",
      re8_dispatched == 0 ? "yes" : "NO", cold1 > 0.0 ? re8 / cold1 : 0.0,
      speedup_ok ? "yes" : "NO");
  return speedup_ok && re8_dispatched == 0 ? 0 : 1;
}
