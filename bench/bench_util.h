// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary regenerates one table or figure from the paper's evaluation:
// it prints the same rows/series the paper reports (absolute values reflect
// this reproduction's substrates, shapes should match the paper — see
// EXPERIMENTS.md). Common flags:
//   --instructions=N   instructions per benchmark (default per-bench)
//   --benchmark=abbr   restrict to one Table I benchmark
//   --cnn              use the trained CNN predictor where supported
//                      (trains & caches a bundle on first use)
//   --metrics[=path]   enable the observability layer and dump the metrics
//                      registry at exit (text to stdout, or to `path` — JSON
//                      when it ends in .json): the machine-readable phase
//                      breakdown behind the figure being reproduced
//   --trace-out=file   record scoped spans; write Chrome trace JSON at exit
#pragma once

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/artifacts.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/simnet_trainer.h"
#include "core/simulator.h"

namespace mlsim::bench {

/// Turn observability on and register an atexit hook dumping the metrics
/// registry (and, when requested, the Chrome trace) after the bench's own
/// output. Called by Args::parse for --metrics / --trace-out.
void enable_metrics_dump_at_exit(bool metrics, const std::string& metrics_path,
                                 const std::string& trace_out);

struct Args {
  std::size_t instructions = 0;  // 0 = bench default
  std::string benchmark;         // empty = bench default set
  bool use_cnn = false;
  bool metrics = false;
  std::string metrics_path;  // empty = stdout
  std::string trace_out;

  static Args parse(int argc, char** argv, std::size_t default_instructions) {
    Args a;
    a.instructions = default_instructions;
    for (int i = 1; i < argc; ++i) {
      const std::string s = argv[i];
      if (s.rfind("--instructions=", 0) == 0) {
        a.instructions = std::stoull(s.substr(15));
      } else if (s.rfind("--benchmark=", 0) == 0) {
        a.benchmark = s.substr(12);
      } else if (s == "--cnn") {
        a.use_cnn = true;
      } else if (s == "--metrics") {
        a.metrics = true;
      } else if (s.rfind("--metrics=", 0) == 0) {
        a.metrics = true;
        a.metrics_path = s.substr(10);
      } else if (s.rfind("--trace-out=", 0) == 0) {
        a.trace_out = s.substr(12);
      } else if (s == "--help" || s == "-h") {
        std::cout << "flags: --instructions=N --benchmark=abbr --cnn "
                     "--metrics[=path] --trace-out=file.json\n";
        std::exit(0);
      } else {
        std::cerr << "unknown flag: " << s << "\n";
        std::exit(2);
      }
    }
    if (a.metrics || !a.trace_out.empty()) {
      enable_metrics_dump_at_exit(a.metrics, a.metrics_path, a.trace_out);
    }
    return a;
  }
};

inline std::vector<std::string> benchmarks_or(const Args& a,
                                              std::vector<std::string> def) {
  if (!a.benchmark.empty()) return {a.benchmark};
  return def;
}

/// Header line naming the experiment being reproduced.
inline void banner(const std::string& what, const std::string& notes = "") {
  std::cout << "== " << what << " ==\n";
  if (!notes.empty()) std::cout << notes << "\n";
}

/// Print a result table to stdout and, when the MLSIM_CSV_DIR environment
/// variable is set, also write it as <dir>/<name>.csv for plotting.
void emit(const Table& table, const std::string& name);

/// Trained SimNet bundle: loaded from the artifact cache, or trained on the
/// paper's 4 training benchmarks and cached. `window` sets the model's
/// context+1 (33 = practical default for this machine).
core::SimNetBundle trained_bundle(std::size_t window = 33,
                                  std::size_t train_instructions = 30000);

/// Sequential-reference CPI of the analytic ML simulator (the accuracy
/// baseline for parallel-error studies).
double sequential_ml_cpi(core::LatencyPredictor& pred,
                         const trace::EncodedTrace& tr, std::size_t ctx);

}  // namespace mlsim::bench
