// Fig. 11 — CPU-based vs. GPU-based input construction, per-step
// microseconds per instruction. Paper (DGX-A100): construction 1.84 -> 0.33,
// data transfer 4.0 -> 0.04 (only the new instruction crosses the link),
// update/retire 0.1 -> 0.01; overall ~4.5x simulation speedup.
#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/gpu_sim.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 50000);
  const std::string abbr = args.benchmark.empty() ? "xz" : args.benchmark;
  bench::banner("Fig. 11: CPU- vs GPU-based input construction",
                "benchmark " + abbr + ", context 111");

  const auto tr = core::labeled_trace(abbr, args.instructions);
  core::AnalyticPredictor pred;

  auto run = [&](bool gic) {
    device::Device dev;
    core::GpuSimOptions o;
    o.context_length = core::kDefaultContextLength;
    o.gpu_input_construction = gic;
    o.sliding_window = false;
    o.custom_conv = false;
    o.engine = device::Engine::kLibTorch;
    o.pipelined = false;
    core::GpuSimulator sim(pred, dev, o);
    return sim.run(tr);
  };
  const auto cpu = run(false);
  const auto gpu = run(true);

  Table t({"step", "CPU-based us/inst", "GPU-based us/inst", "paper CPU",
           "paper GPU"});
  t.add_row({std::string("input construction"), cpu.profile.input_construct,
             gpu.profile.input_construct, 1.84, 0.33});
  t.add_row({std::string("host->device transfer"), cpu.profile.h2d,
             gpu.profile.h2d, 4.0, 0.04});
  t.add_row({std::string("update + retire"), cpu.profile.update_retire,
             gpu.profile.update_retire, 0.1, 0.01});
  t.add_row({std::string("total pipeline"), cpu.profile.total(),
             gpu.profile.total(), -1.0, -1.0});
  bench::emit(t, "fig11_input_construction");
  std::printf("simulation speedup from GPU input construction: %.2fx "
              "(paper: 4.5x)\n", cpu.profile.total() / gpu.profile.total());
  return 0;
}
