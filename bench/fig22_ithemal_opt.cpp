// Fig. 22 / §VII-B — generalising the optimisations to Ithemal.
//
// Trains the hierarchical-LSTM block-throughput baseline on real blocks,
// then contrasts the modeled GPU cost of the original sequential offload
// (per-block padded copies + one framework-dispatched kernel per hierarchy
// step) with the optimised offload (blocks batched, custom token layer
// skipping padding, TensorRT engine, pipelined copies).
#include "bench_util.h"
#include "core/ithemal.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 30000);
  bench::banner("Fig. 22 / SVII-B: optimisations generalised to Ithemal",
                std::to_string(args.instructions) + " training instructions");

  std::vector<trace::EncodedTrace> traces;
  for (const auto& abbr : trace::train_benchmarks()) {
    traces.push_back(core::labeled_trace(abbr, args.instructions));
  }
  std::vector<const trace::EncodedTrace*> ptrs;
  for (const auto& t : traces) ptrs.push_back(&t);

  core::IthemalConfig cfg;
  cfg.epochs = 2;
  std::vector<float> scales;
  core::IthemalTrainReport report;
  core::IthemalModel model = core::train_ithemal(ptrs, cfg, &scales, &report);
  std::printf("trained on %zu basic blocks; holdout block-cycle MAPE %.1f%% "
              "(Ithemal paper: <9%% on real x86 basic blocks)\n",
              report.blocks, report.mape_percent);

  // Average block length from the training traces.
  std::size_t total_len = 0, n_blocks = 0;
  for (const auto& t : traces) {
    for (const auto& b : core::extract_basic_blocks(t, cfg.max_block_len)) {
      total_len += b.length;
      ++n_blocks;
    }
  }
  const std::size_t avg_len = std::max<std::size_t>(1, total_len / n_blocks);

  Table t({"offload", "us/instruction (modeled)", "MIPS"});
  const auto thr = core::model_ithemal_throughput(model, device::GpuSpec::a100(),
                                                  avg_len, 4096);
  t.add_row({std::string("original sequential Ithemal"),
             thr.sequential_us_per_inst, 1.0 / thr.sequential_us_per_inst});
  t.add_row({std::string("optimised (batched+custom+TRT+pipelined)"),
             thr.optimized_us_per_inst, 1.0 / thr.optimized_us_per_inst});
  bench::emit(t, "fig22_ithemal_opt");
  std::printf("speedup from generalised optimisations: %.0fx (avg block "
              "length %zu; paper argues the same redundant-movement and "
              "parallelism fixes apply)\n",
              thr.sequential_us_per_inst / thr.optimized_us_per_inst, avg_len);
  return 0;
}
