// Fig. 6 — parallel simulation error (no recovery) vs. number of
// sub-traces, for all 17 test benchmarks.
//
// Paper: 10M instructions with 32k/64k/96k/128k sub-traces (errors up to
// ~40%, minimum ~22% at 128k). Default here: 1M instructions with the
// sub-trace counts scaled to preserve the per-partition lengths
// (~305/156/104/78 instructions); scale up with --instructions.
#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/parallel_sim.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 1'000'000);
  const std::size_t ctx = 64;
  // Per-partition lengths matching the paper's 10M / {32k,64k,96k,128k}.
  const std::size_t part_lens[] = {305, 156, 104, 78};

  bench::banner("Fig. 6: parallel simulation error vs #sub-traces (no recovery)",
                std::to_string(args.instructions) +
                    " instructions/benchmark, context 64, error vs sequential ML "
                    "simulation (paper definition)");

  Table t({"benchmark", "32k-equiv %", "64k-equiv %", "96k-equiv %",
           "128k-equiv %"});
  core::AnalyticPredictor pred;
  RunningStats per_col[4];
  for (const auto& abbr : bench::benchmarks_or(args, trace::test_benchmarks())) {
    const auto tr = core::labeled_trace(abbr, args.instructions);
    const double seq = bench::sequential_ml_cpi(pred, tr, ctx);
    std::vector<Table::Cell> row{abbr};
    for (int c = 0; c < 4; ++c) {
      core::ParallelSimOptions o;
      o.num_subtraces = std::max<std::size_t>(2, args.instructions / part_lens[c]);
      o.context_length = ctx;
      core::ParallelSimulator sim(pred, o);
      const double err = std::abs(
          core::ParallelSimulator::cpi_error_percent(seq, sim.run(tr).cpi()));
      per_col[c].add(err);
      row.push_back(err);
    }
    t.add_row(std::move(row));
  }
  t.add_row({std::string("AVG"), per_col[0].mean(), per_col[1].mean(),
             per_col[2].mean(), per_col[3].mean()});
  t.set_precision(2);
  bench::emit(t, "fig06_parallel_error");
  std::printf("paper shape: error grows with #sub-traces; up to ~40%% (exch), "
              ">=22%% at the 128k-equivalent point\n");
  return 0;
}
