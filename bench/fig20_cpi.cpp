// Fig. 20 — CPI per benchmark: ML simulator vs. cycle-level ground truth
// (plus the interval / ZSim-class model for reference). Pass --cnn to use
// the trained CNN predictor instead of the analytic stand-in.
#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/metrics.h"
#include "core/parallel_sim.h"
#include "uarch/interval_core.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 300000);
  bench::banner("Fig. 20: CPI per benchmark (ML simulator vs cycle-level)",
                std::to_string(args.instructions) + " instructions" +
                    (args.use_cnn ? ", CNN predictor" : ", analytic predictor"));

  std::optional<core::CnnPredictor> cnn;
  core::AnalyticPredictor analytic;
  std::size_t ctx = 64;
  if (args.use_cnn) {
    cnn.emplace(bench::trained_bundle());
    ctx = cnn->bundle().model.config().window - 1;
  }
  core::LatencyPredictor& pred = args.use_cnn
                                     ? static_cast<core::LatencyPredictor&>(*cnn)
                                     : analytic;

  Table t({"benchmark", "ML CPI", "truth CPI", "error %"});
  RunningStats errs;
  for (const auto& abbr : bench::benchmarks_or(args, trace::test_benchmarks())) {
    const auto tr = core::labeled_trace(abbr, args.instructions);
    // The CNN is far slower per instruction: cap its run length.
    const std::size_t n =
        args.use_cnn ? std::min<std::size_t>(tr.size(), 4000) : tr.size();
    const auto sub = n == tr.size() ? tr : tr.slice(0, n);
    core::ParallelSimOptions o;
    o.num_subtraces = 1;
    o.context_length = ctx;
    core::ParallelSimulator sim(pred, o);
    const double ml = sim.run(sub).cpi();
    const double truth = static_cast<double>(core::total_cycles_from_targets(sub)) /
                         static_cast<double>(sub.size());
    const double err = std::abs(signed_percent_error(truth, ml));
    errs.add(err);
    t.add_row({abbr, ml, truth, err});
  }
  t.set_precision(3);
  bench::emit(t, "fig20_cpi");
  std::printf("average |CPI error|: %.2f%% (paper trained model: ~2%%, this "
              "repo's analytic stand-in: ~10-15%%)\n", errs.mean());
  return 0;
}
