// Ablation — context length (DESIGN.md): the paper fixes the inference
// window at context 111 + 1 for the Table II machine so every structural
// stall source (IQ 32, ROB 40, LQ/SQ 16) is visible to the model. This
// sweep shows the accuracy/cost trade-off: short contexts hide ROB/IQ
// back-pressure (accuracy degrades), long contexts only add FLOPs.
#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/metrics.h"
#include "core/parallel_sim.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 200000);
  const std::string abbr = args.benchmark.empty() ? "mcf" : args.benchmark;
  bench::banner("Ablation: context length vs accuracy and inference cost",
                "benchmark " + abbr + ", " + std::to_string(args.instructions) +
                    " instructions (machine: IQ 32 / ROB 40)");

  const auto tr = core::labeled_trace(abbr, args.instructions);
  const double truth =
      static_cast<double>(core::total_cycles_from_targets(tr)) /
      static_cast<double>(tr.size());
  core::AnalyticPredictor pred;
  const device::GpuSpec a100 = device::GpuSpec::a100();

  Table t({"context", "CPI error vs truth %", "inference us (modeled)",
           "note"});
  for (const std::size_t ctx : {8, 16, 32, 48, 64, 96, 111}) {
    core::ParallelSimOptions o;
    o.num_subtraces = 1;
    o.context_length = ctx;
    core::ParallelSimulator sim(pred, o);
    const double cpi = sim.run(tr).cpi();
    const double err = std::abs(signed_percent_error(truth, cpi));
    const double inf = a100.inference_time_us(
        device::Engine::kTensorRTSparse, core::simnet3c2f_flops(ctx + 1));
    const char* note = ctx < 32   ? "IQ+ROB invisible"
                       : ctx < 41 ? "ROB invisible"
                       : ctx == 111 ? "paper window"
                                    : "";
    t.add_row({static_cast<std::int64_t>(ctx), err, inf, std::string(note)});
  }
  t.set_precision(3);
  bench::emit(t, "ablation_context");
  std::printf("takeaway: accuracy improves sharply once the window covers the "
              "ROB (40); beyond that, inference cost grows ~linearly with "
              "little accuracy gain — the paper's 111 covers every structure "
              "with margin.\n");
  return 0;
}
