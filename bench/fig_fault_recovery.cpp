// Fault-recovery study (docs/RESILIENCE.md, no paper counterpart): CPI
// fidelity and modeled-time cost of the parallel engine under injected
// device kills and corrupted inference outputs. The headline property is
// that recovery is *exact* — killed attempts replay deterministically and
// degraded partitions land on the fallback predictor — so the recovered CPI
// error stays equal to the fault-free §V-B error while only the modeled
// wall-clock pays (wasted attempts, shrunken device pool, retry backoff).
#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/parallel_sim.h"
#include "device/fault.h"

using namespace mlsim;

namespace {

core::ParallelSimOptions config(std::size_t parts, std::size_t ctx) {
  core::ParallelSimOptions o;
  o.num_subtraces = parts;
  o.num_gpus = 8;
  o.context_length = ctx;
  o.warmup = ctx;
  o.post_error_correction = true;
  o.correction_limit = 100;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 400'000);
  const std::size_t ctx = core::kDefaultContextLength;
  const std::size_t parts = 256;
  const std::string abbr = args.benchmark.empty() ? "mcf" : args.benchmark;
  bench::banner("Fault recovery: CPI fidelity and modeled cost under faults",
                abbr + ", " + std::to_string(args.instructions) +
                    " instructions, 256 sub-traces, 8 GPUs, warmup + "
                    "correction, retry budget 8");

  core::AnalyticPredictor pred;
  core::AnalyticPredictor fallback;
  const auto tr = core::labeled_trace(abbr, args.instructions);
  const double seq = bench::sequential_ml_cpi(pred, tr, ctx);

  core::ParallelSimulator clean_sim(pred, config(parts, ctx));
  const auto clean = clean_sim.run(tr);
  const double clean_err =
      std::abs(core::ParallelSimulator::cpi_error_percent(seq, clean.cpi()));

  Table kills({"kill rate %", "CPI err %", "err / fault-free", "retries",
               "lost devices", "time x"});
  for (const double rate : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    device::FaultOptions fo;
    fo.seed = 7;
    fo.device_kill_rate = rate;
    const device::FaultInjector inj(fo);
    core::ParallelSimOptions o = config(parts, ctx);
    if (rate > 0.0) o.faults = &inj;
    o.max_retries_per_partition = 8;
    core::ParallelSimulator sim(pred, o);
    const auto res = sim.run(tr);
    const double err =
        std::abs(core::ParallelSimulator::cpi_error_percent(seq, res.cpi()));
    kills.add_row({rate * 100.0, err,
                   clean_err > 0.0 ? err / clean_err : 1.0,
                   static_cast<std::int64_t>(res.retries),
                   static_cast<std::int64_t>(res.lost_devices),
                   res.sim_time_us / clean.sim_time_us});
  }
  kills.set_precision(3);
  bench::emit(kills, "fig_fault_recovery_kills");
  std::printf("acceptance bar: err / fault-free <= 2 at a 10%% kill rate "
              "(recovery is exact, so the ratio stays 1)\n\n");

  Table corrupt({"corrupt rate %", "CPI err %", "degraded parts", "retries",
                 "time x"});
  for (const double rate : {0.0, 0.001, 0.005, 0.01, 0.05}) {
    device::FaultOptions fo;
    fo.seed = 7;
    fo.output_corrupt_rate = rate;
    const device::FaultInjector inj(fo);
    core::ParallelSimOptions o = config(parts, ctx);
    if (rate > 0.0) o.faults = &inj;
    o.fallback = &fallback;
    o.max_retries_per_partition = 8;
    core::ParallelSimulator sim(pred, o);
    const auto res = sim.run(tr);
    corrupt.add_row(
        {rate * 100.0,
         std::abs(core::ParallelSimulator::cpi_error_percent(seq, res.cpi())),
         static_cast<std::int64_t>(res.degraded_partitions.size()),
         static_cast<std::int64_t>(res.retries),
         res.sim_time_us / clean.sim_time_us});
  }
  corrupt.set_precision(3);
  bench::emit(corrupt, "fig_fault_recovery_corruption");
  std::printf("degraded partitions rerun on the fallback predictor; with the "
              "analytic fallback the recovered CPI is bit-identical\n");
  return 0;
}
