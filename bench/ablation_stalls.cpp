// Ablation — ground-truth fetch-stall attribution per benchmark: which
// constraint binds the front end (width / icache / redirect / ROB / IQ /
// LSQ). This decomposition explains the CPI spread across Table I and is
// the structural information the ML model's context window must expose
// (cf. the context-length ablation).
#include "bench_util.h"
#include "trace/functional_sim.h"
#include "uarch/ground_truth.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 100000);
  bench::banner("Ablation: fetch-stall attribution (ground-truth core)",
                std::to_string(args.instructions) + " instructions/benchmark; "
                "% of total cycles by binding constraint");

  Table t({"benchmark", "CPI", "width %", "icache %", "redirect %", "ROB %",
           "IQ %", "LSQ %"});
  for (const auto& abbr : bench::benchmarks_or(args, trace::test_benchmarks())) {
    const auto& wl = trace::find_workload(abbr);
    const trace::Program prog = trace::Program::generate(wl, 1);
    trace::FunctionalSim fsim(prog, 1);
    uarch::Annotator ann;
    uarch::OooCore core;
    std::uint64_t cycles = 0;
    for (std::size_t i = 0; i < args.instructions; ++i) {
      const auto d = fsim.next();
      cycles += core.process(d, ann.annotate(d)).fetch_lat;
    }
    const auto& s = core.stalls();
    const double tot = std::max<double>(1.0, static_cast<double>(s.total()));
    auto pct = [&](std::uint64_t v) { return 100.0 * static_cast<double>(v) / tot; };
    t.add_row({abbr,
               static_cast<double>(cycles) / static_cast<double>(args.instructions),
               pct(s.width), pct(s.icache), pct(s.redirect), pct(s.rob),
               pct(s.iq), pct(s.lsq)});
  }
  t.set_precision(1);
  bench::emit(t, "ablation_stalls");
  std::printf("takeaway: IQ/ROB back-pressure dominates the dependency-heavy "
              "codes — exactly the state the 112-instruction context window "
              "was sized to expose to the predictor.\n");
  return 0;
}
