// Table III — prediction error by operation type. Paper: ALU instructions
// 1.175%, memory instructions 2.96% (memory ops see more complex hardware:
// caches, queues). Pass --cnn for the trained CNN predictor.
#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/metrics.h"
#include "core/parallel_sim.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 200000);
  bench::banner("Table III: prediction error by operation type",
                std::string(args.use_cnn ? "CNN" : "analytic") +
                    " predictor, execute-latency MAPE (+1 smoothed), all test "
                    "benchmarks");

  std::optional<core::CnnPredictor> cnn;
  core::AnalyticPredictor analytic;
  std::size_t ctx = 64;
  if (args.use_cnn) {
    cnn.emplace(bench::trained_bundle());
    ctx = cnn->bundle().model.config().window - 1;
  }
  core::LatencyPredictor& pred = args.use_cnn
                                     ? static_cast<core::LatencyPredictor&>(*cnn)
                                     : analytic;

  double alu_acc = 0, mem_acc = 0, alu_abs = 0, mem_abs = 0;
  std::size_t alu_n = 0, mem_n = 0;
  for (const auto& abbr : bench::benchmarks_or(args, trace::test_benchmarks())) {
    auto tr = core::labeled_trace(abbr, args.instructions);
    const std::size_t n =
        args.use_cnn ? std::min<std::size_t>(tr.size(), 3000) : tr.size();
    const auto sub = n == tr.size() ? tr : tr.slice(0, n);
    core::ParallelSimOptions o;
    o.num_subtraces = 1;
    o.context_length = ctx;
    o.record_predictions = true;
    core::ParallelSimulator sim(pred, o);
    const auto res = sim.run(sub);
    const auto e = core::optype_error(sub, res.predictions);
    alu_acc += e.alu_percent * static_cast<double>(e.alu_count);
    mem_acc += e.memory_percent * static_cast<double>(e.memory_count);
    alu_abs += e.alu_mae_cycles * static_cast<double>(e.alu_count);
    mem_abs += e.memory_mae_cycles * static_cast<double>(e.memory_count);
    alu_n += e.alu_count;
    mem_n += e.memory_count;
  }

  Table t({"operation type", "relative error %", "abs error (cycles)",
           "paper %"});
  t.add_row({std::string("ALU instructions"),
             alu_n ? alu_acc / static_cast<double>(alu_n) : 0.0,
             alu_n ? alu_abs / static_cast<double>(alu_n) : 0.0, 1.175});
  t.add_row({std::string("memory instructions"),
             mem_n ? mem_acc / static_cast<double>(mem_n) : 0.0,
             mem_n ? mem_abs / static_cast<double>(mem_n) : 0.0, 2.96});
  bench::emit(t, "table3_optype_error");
  std::printf(
      "paper's ordering (memory errs more: caches/queues in play) holds in "
      "absolute cycles; in +1-smoothed relative terms this repo's predictor "
      "inverts it because ALU latencies are small but dependency-chain "
      "dependent — see EXPERIMENTS.md.\n");
  return 0;
}
