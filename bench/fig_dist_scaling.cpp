// Distributed-cluster scaling study (docs/DISTRIBUTED.md, no paper
// counterpart): wall-clock throughput of the coordinator/worker cluster as
// localhost workers are added, against the single-process parallel engine
// on the same trace and options. The headline property is that distribution
// changes *where* shards are computed, never *what* they compute: the
// merged CPI is bit-identical at every worker count (error ratio 1.000),
// and the merge itself is a microscopic fraction of the run.
//
// Expect the *wall-clock* columns to favour the in-process engine here:
// with the analytic predictor a shard costs microseconds to compute but the
// Welcome handshake ships the full encoded trace to every worker, so on
// localhost the run is join-dominated and grows with the worker count. The
// economics flip when shard compute dwarfs trace shipping (the paper's CNN
// predictor is ~10^3 more work per instruction); what this sweep pins down
// is the invariant part — exactness and merge cost, not transport.
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/metrics.h"
#include "core/parallel_sim.h"
#include "core/shard.h"
#include "dist/coordinator.h"
#include "dist/worker.h"
#include "net/socket.h"

using namespace mlsim;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

core::ParallelSimOptions config(std::size_t parts, std::size_t gpus,
                                std::size_t ctx) {
  core::ParallelSimOptions o;
  o.num_subtraces = parts;
  o.num_gpus = gpus;
  o.context_length = ctx;
  o.warmup = ctx;
  o.post_error_correction = true;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 200'000);
  const std::size_t ctx = 64;
  const std::size_t parts = 32, gpus = 16;  // 16 shards of 2 partitions
  const std::string abbr = args.benchmark.empty() ? "xz" : args.benchmark;
  bench::banner(
      "Distributed scaling: localhost workers vs the in-process engine",
      abbr + ", " + std::to_string(args.instructions) + " instructions, " +
          std::to_string(parts) + " sub-traces, " + std::to_string(gpus) +
          " GPU blocks, warmup + correction");

  const auto tr = core::labeled_trace(abbr, args.instructions);
  const core::ParallelSimOptions opts = config(parts, gpus, ctx);
  core::AnalyticPredictor pred;

  // Single-process baseline: the bit-identity reference and the time to beat.
  const auto t0 = std::chrono::steady_clock::now();
  core::ParallelSimulator local_sim(pred, opts);
  const auto local = local_sim.run(tr);
  const double local_s = seconds_since(t0);
  const double truth_cpi =
      static_cast<double>(core::total_cycles_from_targets(tr)) /
      static_cast<double>(tr.size());
  const double local_err = std::abs(local.cpi() - truth_cpi) / truth_cpi;

  // Merge overhead in isolation: recompute every shard outcome in-process
  // and time only ShardMerger::add + finish — the work the coordinator does
  // on top of pure shard compute.
  const core::ShardPlan plan = core::ShardPlan::make(tr.size(), opts);
  std::vector<core::ShardOutcome> outcomes;
  for (std::size_t s = 0; s < plan.num_shards; ++s) {
    core::ShardEngine engine(pred, tr, opts, plan);
    for (std::size_t p = plan.shard_lo(s); p < plan.shard_hi(s); ++p) {
      engine.run_partition(p);
    }
    outcomes.push_back(engine.block_outcome(plan.shard_lo(s), plan.shard_hi(s)));
  }
  const auto tm = std::chrono::steady_clock::now();
  core::ShardMerger merger(plan, opts.record_predictions,
                           opts.record_context_counts);
  for (const auto& o : outcomes) merger.add(o);
  const auto merged = merger.finish(opts, 0);
  const double merge_s = seconds_since(tm);

  Table t({"workers", "wall s", "speedup", "MIPS (real)", "merge %",
           "CPI", "err ratio", "bit-identical"});
  t.add_row({std::string("in-process"), local_s, 1.0,
             static_cast<double>(tr.size()) / local_s / 1e6,
             merge_s / local_s * 100.0, local.cpi(), 1.0,
             std::string(merged.total_cycles == local.total_cycles ? "yes"
                                                                   : "NO")});
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    dist::CoordinatorOptions co;
    co.min_workers = workers;  // time the full cluster, not a ramp-up
    co.poll_ms = 2;
    dist::DistCoordinator coord(net::TcpListener::bind(0), co);
    std::vector<std::thread> ws;
    for (std::size_t w = 0; w < workers; ++w) {
      ws.emplace_back([port = coord.port()] {
        dist::WorkerConfig cfg;
        cfg.port = port;
        cfg.heartbeat_ms = 100;
        try {
          dist::run_worker(cfg);
        } catch (const IoError&) {
        }
      });
    }
    const auto tw = std::chrono::steady_clock::now();
    const auto out = coord.run(tr, opts);
    const double wall = seconds_since(tw);
    const double err = std::abs(out.cpi() - truth_cpi) / truth_cpi;
    t.add_row({static_cast<std::int64_t>(workers), wall, local_s / wall,
               static_cast<double>(tr.size()) / wall / 1e6,
               merge_s / wall * 100.0, out.cpi(),
               local_err > 0.0 ? err / local_err : 1.0,
               std::string(out.total_cycles == local.total_cycles ? "yes"
                                                                  : "NO")});
    coord.shutdown_workers();
    for (auto& w : ws) w.join();
  }
  t.set_precision(3);
  bench::emit(t, "fig_dist_scaling");
  std::printf("acceptance bar: err ratio 1.000 and bit-identical CPI at "
              "every worker count; the merge stays below 1%% of the run\n"
              "(wall s is join-dominated on localhost: every worker receives "
              "the full trace, while analytic-predictor shards are nearly "
              "free to compute)\n");
  return 0;
}
