// Fig. 19 — memory bandwidth per benchmark, derived from the ML simulator's
// predicted latencies and the trace's access levels, vs. the cycle-level
// ground truth. The paper reports GB/s on its 2 GHz-class target; we report
// bytes/kilocycle (frequency-independent) for both so trends compare.
#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/metrics.h"
#include "core/parallel_sim.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 300000);
  const std::size_t ctx = 64;
  bench::banner("Fig. 19: memory bandwidth per benchmark",
                std::to_string(args.instructions) + " instructions, B/kilocycle");

  core::AnalyticPredictor pred;
  Table t({"benchmark", "ML simulator", "cycle-level truth", "ratio"});
  for (const auto& abbr : bench::benchmarks_or(args, trace::test_benchmarks())) {
    const auto tr = core::labeled_trace(abbr, args.instructions);
    core::ParallelSimOptions o;
    o.num_subtraces = 1;
    o.context_length = ctx;
    o.record_predictions = true;
    core::ParallelSimulator sim(pred, o);
    const auto res = sim.run(tr);
    const double ml = core::memory_bandwidth_from_predictions(tr, res.predictions) * 1000;
    const double truth = core::memory_bandwidth_from_targets(tr) * 1000;
    t.add_row({abbr, ml, truth, truth > 0 ? ml / truth : 0.0});
  }
  t.set_precision(2);
  bench::emit(t, "fig19_membw");
  std::printf("paper shape: predicted bandwidth close to gem5 with matching "
              "cross-benchmark trends (streaming codes highest).\n");
  return 0;
}
