// Crash-safe coordination study (docs/RESILIENCE.md "Crash-safe
// coordination", no paper counterpart): what the durable run journal costs
// on the happy path, and what coordinator failover costs end to end.
//
// Part 1 — journal overhead: the same distributed run with the write-ahead
// journal off vs on (fsync per record). The acceptance bar is < 3% added
// wall clock; the table also reports the journal's record count and on-disk
// size so the per-shard durability cost is visible.
//
// Part 2 — kill + resume vs uninterrupted: an uninterrupted journaled run as
// the baseline, then the full failover drill — fork a journaling coordinator
// process, SIGKILL it once ~50% of the shards are durably journaled, restart
// it on the same port with resume, and let the orphaned worker processes
// re-attach via Rejoin. Reported: total wall clock (kill + restart + resume
// included) vs the uninterrupted run, shards replayed from the journal, and
// whether the merged CPI stays bit-identical to the local reference.
#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/parallel_sim.h"
#include "dist/coordinator.h"
#include "dist/journal.h"
#include "dist/worker.h"
#include "net/socket.h"

using namespace mlsim;
namespace fs = std::filesystem;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

core::ParallelSimOptions config(std::size_t parts, std::size_t gpus) {
  core::ParallelSimOptions o;
  o.num_subtraces = parts;
  o.num_gpus = gpus;
  o.context_length = 64;
  o.warmup = 64;
  o.post_error_correction = true;
  return o;
}

fs::path scratch_journal(const std::string& tag) {
  const fs::path p = fs::temp_directory_path() /
                     ("mlsim_failover_" + tag + "_" +
                      std::to_string(::getpid()) + ".jrnl");
  fs::remove(p);
  return p;
}

/// In-process worker for the overhead study (nothing gets killed there).
std::thread worker_thread(std::uint16_t port) {
  return std::thread([port] {
    dist::WorkerConfig cfg;
    cfg.port = port;
    cfg.heartbeat_ms = 100;
    try {
      dist::run_worker(cfg);
    } catch (const IoError&) {
    }
  });
}

/// Forked worker for the failover drill: a generous reconnect budget so it
/// survives the window where the killed coordinator's port is vacant.
pid_t fork_worker(std::uint16_t port) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  dist::WorkerConfig cfg;
  cfg.port = port;
  cfg.heartbeat_ms = 50;
  cfg.reconnect_budget = 100;
  try {
    dist::run_worker(cfg);
    _exit(0);
  } catch (...) {
    _exit(1);
  }
}

/// One coordinator run with two in-process workers; returns wall seconds.
double timed_run(const trace::EncodedTrace& tr,
                 const core::ParallelSimOptions& opts,
                 const fs::path& journal_path) {
  dist::CoordinatorOptions co;
  co.min_workers = 2;
  co.poll_ms = 2;
  co.heartbeat_timeout_ms = 5000;
  co.journal_path = journal_path;
  dist::DistCoordinator coord(net::TcpListener::bind(0), co);
  std::thread w1 = worker_thread(coord.port());
  std::thread w2 = worker_thread(coord.port());
  const auto t0 = std::chrono::steady_clock::now();
  (void)coord.run(tr, opts);
  const double s = seconds_since(t0);
  coord.shutdown_workers();
  w1.join();
  w2.join();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 200'000);
  const std::size_t parts = 32, gpus = 16;  // 16 shards of 2 partitions
  const std::string abbr = args.benchmark.empty() ? "mcf" : args.benchmark;
  bench::banner(
      "Coordinator failover: journal overhead + SIGKILL/resume wall clock",
      abbr + ", " + std::to_string(args.instructions) + " instructions, " +
          std::to_string(parts) + " sub-traces, " + std::to_string(gpus) +
          " GPU blocks");

  const auto tr = core::labeled_trace(abbr, args.instructions);
  const core::ParallelSimOptions opts = config(parts, gpus);
  core::AnalyticPredictor pred;
  core::ParallelSimulator local_sim(pred, opts);
  const auto local = local_sim.run(tr);

  // ---- part 1: journal overhead on the happy path --------------------------

  // Best-of-3 on each side so scheduler noise doesn't swamp a few fsyncs.
  const int reps = 3;
  double off_s = 1e30, on_s = 1e30;
  std::size_t records = 0;
  std::uintmax_t bytes = 0;
  const fs::path overhead_path = scratch_journal("overhead");
  for (int r = 0; r < reps; ++r) {
    off_s = std::min(off_s, timed_run(tr, opts, {}));
    fs::remove(overhead_path);
    on_s = std::min(on_s, timed_run(tr, opts, overhead_path));
    const dist::JournalReplay replay =
        dist::RunJournal::replay(overhead_path, /*strict=*/true);
    records = replay.records;
    bytes = fs::file_size(overhead_path);
  }
  fs::remove(overhead_path);
  const double overhead_pct = off_s > 0.0 ? 100.0 * (on_s / off_s - 1.0) : 0.0;

  Table ovh({"scenario", "wall s", "overhead %", "journal records",
             "journal bytes"});
  ovh.add_row({std::string("journal off"), off_s, 0.0,
               static_cast<std::int64_t>(0), static_cast<std::int64_t>(0)});
  ovh.add_row({std::string("journal on (fsync/record)"), on_s, overhead_pct,
               static_cast<std::int64_t>(records),
               static_cast<std::int64_t>(bytes)});
  ovh.set_precision(3);
  bench::emit(ovh, "fig_coordinator_failover");

  // ---- part 2: SIGKILL at ~50% journaled, restart with resume --------------

  // Uninterrupted baseline: same topology as the drill (forked workers, one
  // journaling coordinator), no kill.
  const fs::path base_path = scratch_journal("baseline");
  double base_s = 0.0;
  bool base_identical = false;
  {
    dist::CoordinatorOptions co;
    co.min_workers = 2;
    co.poll_ms = 2;
    co.heartbeat_timeout_ms = 5000;
    co.journal_path = base_path;
    dist::DistCoordinator coord(net::TcpListener::bind(0), co);
    std::vector<pid_t> pids;
    for (int i = 0; i < 2; ++i) pids.push_back(fork_worker(coord.port()));
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = coord.run(tr, opts);
    base_s = seconds_since(t0);
    base_identical = out.total_cycles == local.total_cycles;
    coord.shutdown_workers();
    int status = 0;
    for (const pid_t p : pids) waitpid(p, &status, 0);
  }
  fs::remove(base_path);

  // Failover drill. The clock starts when the doomed coordinator forks and
  // stops when the resumed run merges — kill detection, port rebind, Rejoin
  // handshakes, and journal replay are all inside the measurement.
  const fs::path drill_path = scratch_journal("drill");
  double drill_s = 0.0;
  bool drill_identical = false;
  std::size_t replayed = 0, dispatched = 0, rejoined = 0;
  {
    auto listener =
        std::make_unique<net::TcpListener>(net::TcpListener::bind(0));
    const std::uint16_t port = listener->port();
    const auto t0 = std::chrono::steady_clock::now();
    const pid_t coord_pid = fork();
    if (coord_pid == 0) {
      dist::CoordinatorOptions co;
      co.min_workers = 2;
      co.poll_ms = 2;
      co.heartbeat_timeout_ms = 30000;
      co.journal_path = drill_path;
      try {
        dist::DistCoordinator coord(std::move(*listener), co);
        (void)coord.run(tr, opts);
        coord.shutdown_workers();
        _exit(0);
      } catch (...) {
        _exit(1);
      }
    }
    listener.reset();
    std::vector<pid_t> pids;
    for (int i = 0; i < 2; ++i) pids.push_back(fork_worker(port));

    // SIGKILL once half the shards are durably journaled.
    for (int i = 0; i < 30000; ++i) {
      if (dist::RunJournal::replay(drill_path, false).results.size() >= 8) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    kill(coord_pid, SIGKILL);
    int status = 0;
    waitpid(coord_pid, &status, 0);

    // Restart on the same port (SO_REUSEADDR) with resume; the orphaned
    // workers' reconnect loops find it and Rejoin.
    dist::CoordinatorOptions rc;
    rc.min_workers = 1;
    rc.poll_ms = 2;
    rc.heartbeat_timeout_ms = 30000;
    rc.journal_path = drill_path;
    rc.resume = true;
    std::unique_ptr<dist::DistCoordinator> coord;
    for (int i = 0; i < 200 && !coord; ++i) {
      try {
        coord = std::make_unique<dist::DistCoordinator>(
            net::TcpListener::bind(port), rc);
      } catch (const IoError&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    }
    if (!coord) {
      std::fprintf(stderr, "failed to rebind port %u for the resume\n", port);
      return 1;
    }
    const auto out = coord->run(tr, opts);
    drill_s = seconds_since(t0);
    drill_identical = out.total_cycles == local.total_cycles;
    const dist::CoordinatorStats st = coord->stats();
    replayed = st.journal_replayed;
    dispatched = st.shards_dispatched;
    rejoined = st.workers_rejoined;
    coord->shutdown_workers();
    coord.reset();
    for (const pid_t p : pids) waitpid(p, &status, 0);
  }
  fs::remove(drill_path);

  Table drill({"scenario", "wall s", "vs baseline", "replayed", "dispatched",
               "rejoined", "bit-identical"});
  drill.add_row({std::string("uninterrupted"), base_s, 1.0,
                 static_cast<std::int64_t>(0), static_cast<std::int64_t>(16),
                 static_cast<std::int64_t>(0),
                 std::string(base_identical ? "yes" : "NO")});
  drill.add_row({std::string("SIGKILL@50% + resume"), drill_s,
                 base_s > 0.0 ? drill_s / base_s : 0.0,
                 static_cast<std::int64_t>(replayed),
                 static_cast<std::int64_t>(dispatched),
                 static_cast<std::int64_t>(rejoined),
                 std::string(drill_identical ? "yes" : "NO")});
  drill.set_precision(3);
  bench::emit(drill, "fig_coordinator_failover_resume");

  std::printf(
      "acceptance bar: journal adds < 3%% wall clock (measured %.2f%%), and "
      "the SIGKILL@50%%+resume drill merges bit-identically with the "
      "journaled shards replayed, not re-dispatched (replayed %zu of 16, "
      "measured %.2fx the uninterrupted wall clock)\n",
      overhead_pct, replayed, base_s > 0.0 ? drill_s / base_s : 0.0);
  return 0;
}
