// Fig. 17 — strong and weak scaling on the (modeled) Summit V100 cluster.
// Paper strong scaling of 10B instructions: speedups 5.43/10.28/19.96/40.59/
// 79.45/160.09/225.89x at 6/12/24/48/96/192/282 GPUs; weak scaling at 282
// GPUs improves with instruction count as the correction-work fraction drops.
#include "bench_util.h"
#include "core/analytic_predictor.h"
#include "core/parallel_sim.h"

using namespace mlsim;

namespace {
core::ParallelSimResult run(core::LatencyPredictor& pred,
                            const trace::EncodedTrace& tr, std::size_t gpus,
                            std::size_t fixed_subtraces = 0) {
  core::ParallelSimOptions o;
  o.num_gpus = gpus;
  // 32k partitions per GPU as in the paper, clamped so partitions stay
  // meaningfully longer than the warmup at reduced instruction counts.
  // Paper per-partition length at full scale: 10B / (32k x 282) ~ 1082.
  o.num_subtraces = fixed_subtraces != 0
                        ? fixed_subtraces
                        : std::min<std::size_t>(32768 * gpus, tr.size() / 1024);
  o.num_subtraces = std::max(o.num_subtraces, gpus);
  o.context_length = core::kDefaultContextLength;
  o.warmup = o.context_length;
  o.post_error_correction = true;
  core::CostModel cm;
  cm.gpu = device::GpuSpec::v100();
  o.costs = cm;
  o.engine = device::Engine::kTensorRTHalf;  // V100: no sparse tensor cores
  core::ParallelSimulator sim(pred, o);
  return sim.run(tr);
}
}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, 4'000'000);
  const std::string abbr = args.benchmark.empty() ? "xz" : args.benchmark;
  bench::banner("Fig. 17: strong and weak scaling (modeled Summit V100s)",
                "benchmark " + abbr + " (paper: 10B instructions strong / up "
                "to 100B weak; scaled to " + std::to_string(args.instructions) +
                " here)");

  core::AnalyticPredictor pred;
  const auto tr = core::labeled_trace(abbr, args.instructions);

  // ---- Strong scaling -------------------------------------------------------
  const std::size_t gpu_counts[] = {1, 6, 12, 24, 48, 96, 192, 282};
  const double paper_speedup[] = {1, 5.43, 10.28, 19.96, 40.59, 79.45, 160.09,
                                  225.89};
  Table strong({"GPUs", "MIPS (modeled)", "speedup", "paper speedup"});
  double base_mips = 0;
  for (std::size_t i = 0; i < std::size(gpu_counts); ++i) {
    const auto res = run(pred, tr, gpu_counts[i]);
    if (base_mips == 0) base_mips = res.mips();
    strong.add_row({static_cast<std::int64_t>(gpu_counts[i]), res.mips(),
                    res.mips() / base_mips, paper_speedup[i]});
  }
  std::cout << "(a) strong scaling, " << args.instructions << " instructions\n";
  bench::emit(strong, "fig17_scalability_strong");

  // ---- Weak scaling ---------------------------------------------------------
  // As in the paper, the partition count stays fixed while the instruction
  // count grows, so partitions lengthen and the re-simulated (warmup +
  // correction) fraction shrinks.
  std::cout << "(b) weak scaling at 282 GPUs (fixed partition count)\n";
  const std::size_t fixed_parts = std::max<std::size_t>(282, args.instructions / 8192);
  Table weak({"instructions", "MIPS (modeled)", "redundant work %"});
  for (std::size_t n :
       {args.instructions / 8, args.instructions / 4, args.instructions / 2,
        args.instructions}) {
    const auto t = core::labeled_trace(abbr, n);
    const auto res = run(pred, t, 282, fixed_parts);
    weak.add_row({static_cast<std::int64_t>(n), res.mips(),
                  100.0 *
                      static_cast<double>(res.corrected_instructions +
                                          res.warmup_instructions) /
                      static_cast<double>(n)});
  }
  bench::emit(weak, "fig17_scalability_weak");
  std::printf("paper shape: near-linear strong scaling; weak scaling improves "
              "with size as the re-simulated (correction) fraction drops.\n");
  return 0;
}
