// Quickstart: the smallest useful tour of the public API.
//
//   1. Generate a labeled trace for a Table I benchmark (functional sim ->
//      annotation -> cycle-level ground truth -> feature encoding).
//   2. Simulate it with the optimised single-device ML simulator.
//   3. Simulate it in parallel (sub-traces + warmup + correction).
//   4. Compare accuracy and (modeled) throughput.
//
// Usage: quickstart [benchmark-abbr] [instructions]   (default: xz 200000)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/metrics.h"
#include "core/simulator.h"

int main(int argc, char** argv) {
  using namespace mlsim;
  const std::string abbr = argc > 1 ? argv[1] : "xz";
  const std::size_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

  std::printf("generating %zu instructions of %s (%s)...\n", n, abbr.c_str(),
              trace::find_workload(abbr).name.c_str());
  const trace::EncodedTrace tr = core::labeled_trace(abbr, n);

  core::MLSimulator sim;  // analytic predictor, A100 device model

  // Optimised single-device simulation (all §IV optimisations on).
  const core::SimOutput fast = sim.simulate(tr);
  std::printf("\nsingle device (GIC+SWIQ+CC+OI+PS):\n");
  std::printf("  CPI %.3f  |  error vs cycle-level truth %+.2f%%\n", fast.cpi(),
              sim.cpi_error_percent(tr, fast.cpi()));
  std::printf("  modeled throughput %.3f MIPS (per-instruction %.3f us)\n",
              fast.mips(), fast.sim_time_us / static_cast<double>(n));

  // Naive sequential baseline for contrast.
  const core::SimOutput slow = sim.simulate_sequential(tr);
  std::printf("\nsequential baseline (four redundant copies, LibTorch):\n");
  std::printf("  modeled throughput %.4f MIPS  ->  optimisations give %.1fx\n",
              slow.mips(), fast.mips() / slow.mips());

  // Parallel simulation with accuracy recovery.
  const std::size_t subtraces = std::max<std::size_t>(2, n / 400);
  const core::ParallelSimResult par =
      sim.simulate_parallel(tr, subtraces, /*num_gpus=*/8);
  std::printf("\nparallel (%zu sub-traces on 8 modeled GPUs, warmup + "
              "correction):\n", subtraces);
  std::printf("  CPI %.3f  |  error vs truth %+.2f%%  |  modeled %.1f MIPS\n",
              par.cpi(), sim.cpi_error_percent(tr, par.cpi()), par.mips());
  std::printf("  corrected %zu instructions; warmup work %zu instructions\n",
              par.corrected_instructions, par.warmup_instructions);

  const double truth_cpi =
      static_cast<double>(core::total_cycles_from_targets(tr)) /
      static_cast<double>(tr.size());
  std::printf("\nground-truth CPI (cycle-level OoO model): %.3f\n", truth_cpi);
  return 0;
}
