// mlsim_cli — command-line driver for the library.
//
//   mlsim_cli trace <benchmark> <instructions> [out.bin]
//       Generate a labeled trace (functional sim -> annotate -> cycle-level
//       ground truth -> encode) and optionally save it.
//
//   mlsim_cli simulate <benchmark|trace.bin> [instructions]
//              [--parallel=P] [--gpus=G] [--context=C] [--no-recovery]
//       Run the ML simulator (single optimised device, or the parallel
//       scheme when --parallel is given) and report CPI, error vs ground
//       truth, and modeled throughput.
//       Fault tolerance (parallel mode only; docs/RESILIENCE.md):
//         --fault-kill=R / --fault-corrupt=R / --fault-straggler=R
//             inject device kills / corrupted inference outputs / stragglers
//             at rate R in [0,1];
//         --fault-seed=S   deterministic injection seed (default 1);
//         --retries=N      per-partition retry budget (default 3);
//         --checkpoint[=path]  periodic per-partition checkpointing
//             (default path lives in the artifact cache);
//         --resume         continue from the checkpoint if one exists.
//
//   mlsim_cli suite <instructions-per-benchmark> <gpus>
//              [--checkpoint[=path]] [--resume]
//       Simulate all 21 Table I benchmarks scheduled across a GPU cluster;
//       with --checkpoint a killed run resumes past completed jobs.
//
//   mlsim_cli rates <benchmark|trace.bin> [instructions]
//       Print §VI-E architectural metrics (miss rates, mispredict rate,
//       bandwidth) derived from the trace.
//
//   mlsim_cli stream <benchmark> <instructions> [context]
//       Streaming simulation with bounded memory (generation and ML
//       simulation pipelined chunk by chunk) — the mode for very long
//       programs that cannot be materialised.
//
// Observability (simulate/suite/stream; see docs/OBSERVABILITY.md):
//   --metrics[=path]     enable the metrics registry; print a per-phase
//                        breakdown and the registry dump (text to stdout, or
//                        to `path` — JSON when it ends in .json).
//   --trace-out=<file>   record scoped spans and write Chrome trace-event
//                        JSON loadable in chrome://tracing / Perfetto.
//
// Exit codes: 0 success, 2 bad usage, 3 I/O failure (missing/unwritable
// files), 4 corrupt data or violated invariant (CheckError), 5 any other
// internal error.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/artifacts.h"
#include "common/check.h"
#include "common/table.h"
#include "core/analytic_predictor.h"
#include "core/metrics.h"
#include "core/simulator.h"
#include "core/streaming.h"
#include "core/suite.h"
#include "device/fault.h"
#include "obs/obs.h"
#include "trace/stream.h"

using namespace mlsim;

namespace {

struct ObsFlags {
  bool metrics = false;
  std::string metrics_path;  // empty = stdout
  std::string trace_out;

  bool active() const { return metrics || !trace_out.empty(); }
};

bool parse_obs_flag(const std::string& s, ObsFlags& f) {
  if (s == "--metrics") {
    f.metrics = true;
    return true;
  }
  if (s.rfind("--metrics=", 0) == 0) {
    f.metrics = true;
    f.metrics_path = s.substr(10);
    return true;
  }
  if (s.rfind("--trace-out=", 0) == 0) {
    f.trace_out = s.substr(12);
    return true;
  }
  return false;
}

void enable_obs(const ObsFlags& f) {
  if (!f.active()) return;
  if (!obs::kCompiledIn) {
    std::fprintf(stderr, "note: built with MLSIM_OBS_DISABLE=ON; --metrics and "
                         "--trace-out will produce empty output\n");
  }
  obs::set_enabled(true);
  obs::reset_trace();
}

void finish_obs(const ObsFlags& f) {
  if (!f.active()) return;
  if (f.metrics) {
    if (f.metrics_path.empty()) {
      std::printf("-- metrics --\n");
      obs::default_registry().write_text(std::cout);
    } else {
      std::ofstream os(f.metrics_path);
      if (!os.is_open()) {
        std::fprintf(stderr, "cannot write metrics to %s\n",
                     f.metrics_path.c_str());
      } else {
        const bool json = f.metrics_path.size() >= 5 &&
                          f.metrics_path.rfind(".json") ==
                              f.metrics_path.size() - 5;
        if (json) {
          obs::default_registry().write_json(os);
        } else {
          obs::default_registry().write_text(os);
        }
        std::printf("[metrics written to %s]\n", f.metrics_path.c_str());
      }
    }
  }
  if (!f.trace_out.empty()) {
    if (obs::write_chrome_trace_file(f.trace_out)) {
      std::printf("[trace with %llu spans written to %s — load in "
                  "chrome://tracing or ui.perfetto.dev]\n",
                  static_cast<unsigned long long>(obs::recorded_events()),
                  f.trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", f.trace_out.c_str());
    }
  }
}

/// §IV per-phase simulated-time breakdown of a single-device run.
void print_phase_table(const core::SimOutput& out) {
  const core::StepProfile& pr = out.profile;
  const double total = pr.total();
  Table t({"phase", "us/instr", "share %"});
  const auto row = [&](const std::string& name, double v) {
    t.add_row({name, v, total > 0.0 ? v / total * 100.0 : 0.0});
  };
  row("queue push", pr.queue_push);
  row("input construction", pr.input_construct);
  row("H2D copy", pr.h2d);
  row("transpose", pr.transpose);
  row("inference", pr.inference);
  row("update/retire", pr.update_retire);
  t.add_row({std::string("total"), total, 100.0});
  t.set_precision(4);
  t.print(std::cout);
}

trace::EncodedTrace acquire(const std::string& what, std::size_t n) {
  if (std::filesystem::exists(what)) return trace::EncodedTrace::load(what);
  return core::labeled_trace(what, n == 0 ? 200000 : n);
}

int cmd_trace(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: mlsim_cli trace <benchmark> <instructions> [out.bin]\n");
    return 2;
  }
  const std::string abbr = argv[2];
  const std::size_t n = std::strtoull(argv[3], nullptr, 10);
  const auto tr = core::labeled_trace(abbr, n);
  std::printf("generated %zu labeled instructions of %s (CPI %.3f)\n", tr.size(),
              abbr.c_str(),
              static_cast<double>(core::total_cycles_from_targets(tr)) /
                  static_cast<double>(tr.size()));
  if (argc > 4) {
    tr.save(argv[4]);
    std::printf("saved to %s\n", argv[4]);
  }
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: mlsim_cli simulate <benchmark|trace.bin> "
                         "[instructions] [--parallel=P] [--gpus=G] "
                         "[--context=C] [--no-recovery] [--fault-kill=R] "
                         "[--fault-corrupt=R] [--fault-straggler=R] "
                         "[--fault-seed=S] [--retries=N] [--checkpoint[=path]] "
                         "[--resume] [--metrics[=path]] "
                         "[--trace-out=file.json]\n");
    return 2;
  }
  std::size_t n = 0, parallel = 0, gpus = 1, context = 64, retries = 3;
  bool recovery = true, checkpoint = false, resume = false;
  std::string checkpoint_path;
  device::FaultOptions fault;
  fault.seed = 1;
  bool any_fault = false;
  ObsFlags obs_flags;
  for (int i = 3; i < argc; ++i) {
    const std::string s = argv[i];
    if (s.rfind("--parallel=", 0) == 0) parallel = std::stoull(s.substr(11));
    else if (s.rfind("--gpus=", 0) == 0) gpus = std::stoull(s.substr(7));
    else if (s.rfind("--context=", 0) == 0) context = std::stoull(s.substr(10));
    else if (s == "--no-recovery") recovery = false;
    else if (s.rfind("--fault-kill=", 0) == 0) {
      fault.device_kill_rate = std::stod(s.substr(13));
      any_fault = true;
    } else if (s.rfind("--fault-corrupt=", 0) == 0) {
      fault.output_corrupt_rate = std::stod(s.substr(16));
      any_fault = true;
    } else if (s.rfind("--fault-straggler=", 0) == 0) {
      fault.straggler_rate = std::stod(s.substr(18));
      any_fault = true;
    } else if (s.rfind("--fault-seed=", 0) == 0) {
      fault.seed = std::stoull(s.substr(13));
    } else if (s.rfind("--retries=", 0) == 0) {
      retries = std::stoull(s.substr(10));
    } else if (s == "--checkpoint") {
      checkpoint = true;
    } else if (s.rfind("--checkpoint=", 0) == 0) {
      checkpoint = true;
      checkpoint_path = s.substr(13);
    } else if (s == "--resume") {
      checkpoint = true;
      resume = true;
    }
    else if (parse_obs_flag(s, obs_flags)) continue;
    else if (s[0] != '-') n = std::stoull(s);
    else {
      std::fprintf(stderr, "unknown flag %s\n", s.c_str());
      return 2;
    }
  }
  if (parallel == 0 && (any_fault || checkpoint)) {
    std::fprintf(stderr, "--fault-*/--checkpoint/--resume require "
                         "--parallel=P (fault tolerance is a parallel-"
                         "simulation feature)\n");
    return 2;
  }
  enable_obs(obs_flags);
  const auto tr = acquire(argv[2], n);
  core::MLSimulator::Options opts;
  opts.context_length = context;
  core::MLSimulator sim(opts);

  if (parallel == 0) {
    const auto out = sim.simulate(tr);
    // With --metrics the aggregate one-liner grows into the full §IV
    // per-phase breakdown the paper's Fig. 2/11-16 reason about.
    if (obs_flags.metrics) print_phase_table(out);
    std::printf("single device: CPI %.4f | err vs truth %+.2f%% | %.3f MIPS "
                "(modeled) | ctx occupancy %.2f\n",
                out.cpi(),
                tr.labeled() ? sim.cpi_error_percent(tr, out.cpi()) : 0.0,
                out.mips(), out.avg_context_occupancy);
  } else {
    core::ParallelSimOptions po =
        sim.parallel_options(parallel, gpus, recovery, recovery);
    const device::FaultInjector injector(fault);
    if (any_fault) po.faults = &injector;
    po.max_retries_per_partition = retries;
    if (checkpoint) {
      po.checkpoint_path = checkpoint_path.empty()
                               ? artifact_path("mlsim_cli_simulate.ckpt")
                               : std::filesystem::path(checkpoint_path);
      po.resume = resume;
    }
    const auto out = sim.simulate_parallel(tr, po);
    std::printf("parallel (%zu sub-traces, %zu GPUs, recovery %s): CPI %.4f | "
                "err vs truth %+.2f%% | %.2f MIPS (modeled) | corrected %zu\n",
                parallel, gpus, recovery ? "on" : "off", out.cpi(),
                tr.labeled() ? sim.cpi_error_percent(tr, out.cpi()) : 0.0,
                out.mips(), out.corrected_instructions);
    if (any_fault || out.resumed) {
      std::printf("fault recovery: %zu failed partitions | %zu retries | "
                  "%zu degraded | %zu lost devices | backoff %.0f us%s\n",
                  out.failed_partitions.size(), out.retries,
                  out.degraded_partitions.size(), out.lost_devices,
                  out.retry_backoff_us,
                  out.resumed ? " | resumed from checkpoint" : "");
    }
  }
  finish_obs(obs_flags);
  return 0;
}

int cmd_suite(int argc, char** argv) {
  ObsFlags obs_flags;
  bool checkpoint = false, resume = false;
  std::string checkpoint_path;
  std::vector<std::string> pos;
  for (int i = 2; i < argc; ++i) {
    const std::string s = argv[i];
    if (parse_obs_flag(s, obs_flags)) continue;
    if (s == "--checkpoint") {
      checkpoint = true;
      continue;
    }
    if (s.rfind("--checkpoint=", 0) == 0) {
      checkpoint = true;
      checkpoint_path = s.substr(13);
      continue;
    }
    if (s == "--resume") {
      checkpoint = true;
      resume = true;
      continue;
    }
    if (!s.empty() && s[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", s.c_str());
      return 2;
    }
    pos.push_back(s);
  }
  const std::size_t n = pos.size() > 0 ? std::stoull(pos[0]) : 50000;
  const std::size_t gpus = pos.size() > 1 ? std::stoull(pos[1]) : 4;
  enable_obs(obs_flags);
  std::printf("simulating all 21 benchmarks, %zu instructions each, across "
              "%zu modeled GPUs (LPT schedule)\n", n, gpus);

  std::vector<trace::EncodedTrace> traces;
  std::vector<core::SuiteJob> jobs;
  traces.reserve(trace::spec2017_suite().size());
  for (const auto& b : trace::spec2017_suite()) {
    traces.push_back(core::labeled_trace(b.profile.abbr, n));
  }
  for (std::size_t i = 0; i < traces.size(); ++i) {
    jobs.push_back({&traces[i], trace::spec2017_suite()[i].profile.abbr});
  }

  core::AnalyticPredictor pred;
  core::GpuSimOptions opts;
  opts.context_length = 64;
  const std::filesystem::path ckpt =
      checkpoint ? (checkpoint_path.empty()
                        ? artifact_path("mlsim_cli_suite.ckpt")
                        : std::filesystem::path(checkpoint_path))
                 : std::filesystem::path();
  const auto report = core::run_suite(pred, jobs, gpus, opts, ckpt, resume);

  Table t({"benchmark", "device", "CPI", "device time (ms)"});
  for (const auto& j : report.jobs) {
    t.add_row({j.name, static_cast<std::int64_t>(j.device), j.cpi,
               j.sim_time_us / 1000.0});
  }
  t.set_precision(3);
  t.print(std::cout);
  std::printf("makespan %.1f ms | suite throughput %.2f MIPS | device "
              "utilization %.1f%%\n", report.makespan_us / 1000.0, report.mips(),
              report.utilization() * 100.0);
  finish_obs(obs_flags);
  return 0;
}

int cmd_rates(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: mlsim_cli rates <benchmark|trace.bin> [instructions]\n");
    return 2;
  }
  const std::size_t n = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0;
  const auto tr = acquire(argv[2], n);
  const auto r = core::trace_rates(tr);
  std::printf("instructions:            %zu\n", tr.size());
  std::printf("memory access fraction:  %.1f%%\n", r.memory_access_fraction * 100);
  std::printf("L1D miss rate:           %.2f%%\n", r.l1d_miss_rate * 100);
  std::printf("L2 miss rate (to mem):   %.2f%%\n", r.l2_miss_rate * 100);
  std::printf("branch mispredict rate:  %.2f%% (%zu branches)\n",
              r.branch_mispredict_rate * 100, r.branches);
  if (tr.labeled()) {
    std::printf("ground-truth CPI:        %.3f\n",
                static_cast<double>(core::total_cycles_from_targets(tr)) /
                    static_cast<double>(tr.size()));
    std::printf("memory bandwidth:        %.1f B/kilocycle\n",
                core::memory_bandwidth_from_targets(tr) * 1000);
  }
  return 0;
}

int cmd_stream(int argc, char** argv) {
  ObsFlags obs_flags;
  std::vector<std::string> pos;
  for (int i = 2; i < argc; ++i) {
    const std::string s = argv[i];
    if (parse_obs_flag(s, obs_flags)) continue;
    if (!s.empty() && s[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", s.c_str());
      return 2;
    }
    pos.push_back(s);
  }
  if (pos.size() < 2) {
    std::fprintf(stderr, "usage: mlsim_cli stream <benchmark> <instructions> "
                         "[context] [--metrics[=path]] [--trace-out=file.json]\n");
    return 2;
  }
  const std::string abbr = pos[0];
  const std::uint64_t n = std::stoull(pos[1]);
  const std::size_t ctx = pos.size() > 2 ? std::stoull(pos[2]) : 64;
  enable_obs(obs_flags);
  trace::LabeledTraceStream stream(trace::find_workload(abbr));
  core::AnalyticPredictor pred;
  const auto res = core::simulate_stream(pred, stream, n, ctx);
  std::printf("streamed %llu instructions of %s (context %zu, bounded memory)\n",
              static_cast<unsigned long long>(res.instructions), abbr.c_str(), ctx);
  std::printf("predicted CPI %.4f | ground-truth CPI %.4f | error %+.2f%%\n",
              res.cpi(), res.truth_cpi(),
              (res.truth_cpi() - res.cpi()) / res.truth_cpi() * 100.0);
  finish_obs(obs_flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: mlsim_cli <trace|simulate|suite|rates|stream> ...\n");
    return 2;
  }
  // Distinct exit codes per failure class so scripts and the test harness
  // can tell bad invocations (2) from broken files (3), corrupt data (4),
  // and genuine bugs (5). See the header comment.
  try {
    const std::string cmd = argv[1];
    if (cmd == "trace") return cmd_trace(argc, argv);
    if (cmd == "simulate") return cmd_simulate(argc, argv);
    if (cmd == "suite") return cmd_suite(argc, argv);
    if (cmd == "rates") return cmd_rates(argc, argv);
    if (cmd == "stream") return cmd_stream(argc, argv);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return 2;
  } catch (const IoError& e) {
    std::fprintf(stderr, "mlsim_cli: I/O error: %s\n", e.what());
    return 3;
  } catch (const std::filesystem::filesystem_error& e) {
    std::fprintf(stderr, "mlsim_cli: I/O error: %s\n", e.what());
    return 3;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "mlsim_cli: %s\n", e.what());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mlsim_cli: internal error: %s\n", e.what());
    return 5;
  }
}
