// mlsim_cli — command-line driver for the library.
//
//   mlsim_cli trace <benchmark> <instructions> [out.bin]
//       Generate a labeled trace (functional sim -> annotate -> cycle-level
//       ground truth -> encode) and optionally save it.
//
//   mlsim_cli simulate <benchmark|trace.bin> [instructions]
//              [--parallel=P] [--gpus=G] [--context=C] [--no-recovery]
//       Run the ML simulator (single optimised device, or the parallel
//       scheme when --parallel is given) and report CPI, error vs ground
//       truth, and modeled throughput.
//
//   mlsim_cli suite <instructions-per-benchmark> <gpus>
//       Simulate all 21 Table I benchmarks scheduled across a GPU cluster.
//
//   mlsim_cli rates <benchmark|trace.bin> [instructions]
//       Print §VI-E architectural metrics (miss rates, mispredict rate,
//       bandwidth) derived from the trace.
//
//   mlsim_cli stream <benchmark> <instructions> [context]
//       Streaming simulation with bounded memory (generation and ML
//       simulation pipelined chunk by chunk) — the mode for very long
//       programs that cannot be materialised.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/analytic_predictor.h"
#include "core/metrics.h"
#include "core/simulator.h"
#include "core/streaming.h"
#include "core/suite.h"
#include "trace/stream.h"

using namespace mlsim;

namespace {

trace::EncodedTrace acquire(const std::string& what, std::size_t n) {
  if (std::filesystem::exists(what)) return trace::EncodedTrace::load(what);
  return core::labeled_trace(what, n == 0 ? 200000 : n);
}

int cmd_trace(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: mlsim_cli trace <benchmark> <instructions> [out.bin]\n");
    return 2;
  }
  const std::string abbr = argv[2];
  const std::size_t n = std::strtoull(argv[3], nullptr, 10);
  const auto tr = core::labeled_trace(abbr, n);
  std::printf("generated %zu labeled instructions of %s (CPI %.3f)\n", tr.size(),
              abbr.c_str(),
              static_cast<double>(core::total_cycles_from_targets(tr)) /
                  static_cast<double>(tr.size()));
  if (argc > 4) {
    tr.save(argv[4]);
    std::printf("saved to %s\n", argv[4]);
  }
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: mlsim_cli simulate <benchmark|trace.bin> "
                         "[instructions] [--parallel=P] [--gpus=G] "
                         "[--context=C] [--no-recovery]\n");
    return 2;
  }
  std::size_t n = 0, parallel = 0, gpus = 1, context = 64;
  bool recovery = true;
  for (int i = 3; i < argc; ++i) {
    const std::string s = argv[i];
    if (s.rfind("--parallel=", 0) == 0) parallel = std::stoull(s.substr(11));
    else if (s.rfind("--gpus=", 0) == 0) gpus = std::stoull(s.substr(7));
    else if (s.rfind("--context=", 0) == 0) context = std::stoull(s.substr(10));
    else if (s == "--no-recovery") recovery = false;
    else if (s[0] != '-') n = std::stoull(s);
    else {
      std::fprintf(stderr, "unknown flag %s\n", s.c_str());
      return 2;
    }
  }
  const auto tr = acquire(argv[2], n);
  core::MLSimulator::Options opts;
  opts.context_length = context;
  core::MLSimulator sim(opts);

  if (parallel == 0) {
    const auto out = sim.simulate(tr);
    std::printf("single device: CPI %.4f | err vs truth %+.2f%% | %.3f MIPS "
                "(modeled) | ctx occupancy %.2f\n",
                out.cpi(),
                tr.labeled() ? sim.cpi_error_percent(tr, out.cpi()) : 0.0,
                out.mips(), out.avg_context_occupancy);
  } else {
    const auto out = sim.simulate_parallel(tr, parallel, gpus, recovery, recovery);
    std::printf("parallel (%zu sub-traces, %zu GPUs, recovery %s): CPI %.4f | "
                "err vs truth %+.2f%% | %.2f MIPS (modeled) | corrected %zu\n",
                parallel, gpus, recovery ? "on" : "off", out.cpi(),
                tr.labeled() ? sim.cpi_error_percent(tr, out.cpi()) : 0.0,
                out.mips(), out.corrected_instructions);
  }
  return 0;
}

int cmd_suite(int argc, char** argv) {
  const std::size_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50000;
  const std::size_t gpus = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;
  std::printf("simulating all 21 benchmarks, %zu instructions each, across "
              "%zu modeled GPUs (LPT schedule)\n", n, gpus);

  std::vector<trace::EncodedTrace> traces;
  std::vector<core::SuiteJob> jobs;
  traces.reserve(trace::spec2017_suite().size());
  for (const auto& b : trace::spec2017_suite()) {
    traces.push_back(core::labeled_trace(b.profile.abbr, n));
  }
  for (std::size_t i = 0; i < traces.size(); ++i) {
    jobs.push_back({&traces[i], trace::spec2017_suite()[i].profile.abbr});
  }

  core::AnalyticPredictor pred;
  core::GpuSimOptions opts;
  opts.context_length = 64;
  const auto report = core::run_suite(pred, jobs, gpus, opts);

  Table t({"benchmark", "device", "CPI", "device time (ms)"});
  for (const auto& j : report.jobs) {
    t.add_row({j.name, static_cast<std::int64_t>(j.device), j.cpi,
               j.sim_time_us / 1000.0});
  }
  t.set_precision(3);
  t.print(std::cout);
  std::printf("makespan %.1f ms | suite throughput %.2f MIPS | device "
              "utilization %.1f%%\n", report.makespan_us / 1000.0, report.mips(),
              report.utilization() * 100.0);
  return 0;
}

int cmd_rates(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: mlsim_cli rates <benchmark|trace.bin> [instructions]\n");
    return 2;
  }
  const std::size_t n = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0;
  const auto tr = acquire(argv[2], n);
  const auto r = core::trace_rates(tr);
  std::printf("instructions:            %zu\n", tr.size());
  std::printf("memory access fraction:  %.1f%%\n", r.memory_access_fraction * 100);
  std::printf("L1D miss rate:           %.2f%%\n", r.l1d_miss_rate * 100);
  std::printf("L2 miss rate (to mem):   %.2f%%\n", r.l2_miss_rate * 100);
  std::printf("branch mispredict rate:  %.2f%% (%zu branches)\n",
              r.branch_mispredict_rate * 100, r.branches);
  if (tr.labeled()) {
    std::printf("ground-truth CPI:        %.3f\n",
                static_cast<double>(core::total_cycles_from_targets(tr)) /
                    static_cast<double>(tr.size()));
    std::printf("memory bandwidth:        %.1f B/kilocycle\n",
                core::memory_bandwidth_from_targets(tr) * 1000);
  }
  return 0;
}

int cmd_stream(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: mlsim_cli stream <benchmark> <instructions> [context]\n");
    return 2;
  }
  const std::string abbr = argv[2];
  const std::uint64_t n = std::strtoull(argv[3], nullptr, 10);
  const std::size_t ctx = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 64;
  trace::LabeledTraceStream stream(trace::find_workload(abbr));
  core::AnalyticPredictor pred;
  const auto res = core::simulate_stream(pred, stream, n, ctx);
  std::printf("streamed %llu instructions of %s (context %zu, bounded memory)\n",
              static_cast<unsigned long long>(res.instructions), abbr.c_str(), ctx);
  std::printf("predicted CPI %.4f | ground-truth CPI %.4f | error %+.2f%%\n",
              res.cpi(), res.truth_cpi(),
              (res.truth_cpi() - res.cpi()) / res.truth_cpi() * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: mlsim_cli <trace|simulate|suite|rates|stream> ...\n");
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "trace") return cmd_trace(argc, argv);
  if (cmd == "simulate") return cmd_simulate(argc, argv);
  if (cmd == "suite") return cmd_suite(argc, argv);
  if (cmd == "rates") return cmd_rates(argc, argv);
  if (cmd == "stream") return cmd_stream(argc, argv);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
