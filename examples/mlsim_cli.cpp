// mlsim_cli — command-line driver for the library.
//
//   mlsim_cli trace <benchmark> <instructions> [out.bin]
//       Generate a labeled trace (functional sim -> annotate -> cycle-level
//       ground truth -> encode) and optionally save it.
//
//   mlsim_cli simulate <benchmark|trace.bin> [instructions]
//              [--parallel=P] [--gpus=G] [--context=C] [--no-recovery]
//              [--set key=value]...
//       Run the ML simulator (single optimised device, or the parallel
//       scheme when --parallel is given) and report CPI, error vs ground
//       truth, and modeled throughput. --set applies one machine-config
//       axis (same keys as sweep --axis; docs/SWEEPS.md) to the generated
//       trace — e.g. --set l2.size_kb=512 --set l1d.replacement=drrip —
//       and therefore requires a benchmark, not a trace file.
//       Fault tolerance (parallel mode only; docs/RESILIENCE.md):
//         --fault-kill=R / --fault-corrupt=R / --fault-straggler=R
//             inject device kills / corrupted inference outputs / stragglers
//             at rate R in [0,1];
//         --fault-seed=S   deterministic injection seed (default 1);
//         --retries=N      per-partition retry budget (default 3);
//         --checkpoint[=path]  periodic per-partition checkpointing
//             (default path lives in the artifact cache);
//         --resume         continue from the checkpoint if one exists.
//
//   mlsim_cli suite <instructions-per-benchmark> <gpus>
//              [--checkpoint[=path]] [--resume]
//       Simulate all 21 Table I benchmarks scheduled across a GPU cluster;
//       with --checkpoint a killed run resumes past completed jobs.
//
//   mlsim_cli rates <benchmark|trace.bin> [instructions]
//       Print §VI-E architectural metrics (miss rates, mispredict rate,
//       bandwidth) derived from the trace.
//
//   mlsim_cli stream <benchmark> <instructions> [context]
//       Streaming simulation with bounded memory (generation and ML
//       simulation pipelined chunk by chunk) — the mode for very long
//       programs that cannot be materialised.
//
//   mlsim_cli coordinator <benchmark|trace.bin> [instructions]
//              [--port=N] [--workers=W] [--heartbeat-ms=M] [--timeout-ms=T]
//              [--parallel=P] [--gpus=G] [--context=C] [--no-recovery]
//              [--fault-worker-kill=R] [--fault-seed=S] [--verify]
//              [--steal] [--speculate-pct=P] [--result-cache[=N]]
//              [--journal=PATH] [--resume] [--journal-strict]
//              [--drain-timeout-ms=T]
//       Run one distributed parallel simulation as the cluster coordinator
//       (docs/DISTRIBUTED.md): bind 127.0.0.1:<port> (0 = ephemeral, the
//       bound port is printed), wait for --workers workers, dispatch shard
//       descriptors, recover in-flight shards from dead/hung workers, and
//       merge. --fault-worker-kill simulates whole-worker kills at rate R;
//       --verify reruns in-process and asserts the merged CPI is
//       bit-identical. Elasticity (docs/DISTRIBUTED.md "Elasticity &
//       churn"): --steal rebalances shards off slow workers, --speculate-pct
//       duplicates shards older than that percentile of completed latency
//       onto idle workers, --result-cache memoizes shard outcomes (N
//       entries, default 1024) so repeated runs dispatch nothing.
//       Crash safety (docs/RESILIENCE.md "Crash-safe coordination"):
//       --journal appends every assignment and result to a durable
//       write-ahead journal; after a crash, rerunning with --resume replays
//       it so completed shards are never recomputed (--journal-strict makes
//       a corrupt journal tail fatal instead of truncating it). SIGTERM or
//       SIGINT drains gracefully: in-flight shards get --drain-timeout-ms
//       (default 5000) to finish, the journal records a drained run-close,
//       and the process exits 6; a second signal force-exits 7.
//
//   mlsim_cli worker --connect=host:port [--heartbeat-ms=M] [--no-reconnect]
//              [--leave-after=N] [--reconnect-budget=N]
//       Join a coordinator as one worker process and compute shards until
//       shut down. With --no-reconnect a simulated worker kill is final
//       (the process exits) instead of rejoining like a supervised restart.
//       --leave-after announces a planned departure (Goodbye) after N
//       computed shards — models scale-down or spot preemption with notice.
//       A worker that loses its connection mid-run reconnects with bounded
//       exponential backoff (--reconnect-budget attempts, default 10) and
//       re-attaches to its session — including to a coordinator restarted
//       with --resume — re-delivering any finished-but-unacknowledged shard.
//
//   mlsim_cli serve <benchmark|trace.bin> [instructions] [--requests=N]
//              [--workers=W] [--queue=Q] [--parallel=P] [--deadline-ms=D]
//              [--tenant-quota=N]
//              [--fault-kill=R] [--fault-corrupt=R] [--fault-straggler=R]
//              [--fault-seed=S] [--stall-ms=M]
//       Soak the resilient simulation service (docs/SERVICE.md): submit N
//       requests across all priority classes through admission control and
//       report the typed outcome of every one, the health snapshot, and the
//       service metrics. With --fault-* the run doubles as a chaos drill:
//       device kills and corrupted outputs go through the parallel engine's
//       recovery, and straggler attempts really stall workers for
//       --stall-ms so the hang watchdog fires. SIGTERM/SIGINT drains: the
//       service stops admitting, in-flight requests get --drain-timeout-ms
//       (default 5000) to finish, and the process exits 6 (a second signal
//       force-exits 7).
//
//   mlsim_cli sweep <benchmark> [instructions] | --spec=FILE
//              [--axis key=v1,v2,...]... [--parallel=P] [--gpus=G]
//              [--context=C] [--no-recovery] [--seed=S]
//              [--pareto] [--top=N] [--json[=path]]
//              [--port=N] [--workers=W] [--heartbeat-ms=M] [--timeout-ms=T]
//              [--steal] [--result-cache[=N]] [--repeat=N]
//       Design-space exploration (docs/SWEEPS.md): expand a config lattice
//       (the cartesian product of the --axis value lists, or a spec file;
//       both may be combined as long as no axis repeats) over one shared
//       workload, simulate every point — only the trace is regenerated per
//       point; the predictor is reused, and each point's CPI is
//       bit-identical to `simulate` of that configuration — and rank the
//       Pareto frontier over (CPI, area proxy) plus per-axis sensitivity.
//       --pareto prints frontier points only; --top=N the N best by CPI;
//       --json emits the full report as JSON (stdout, or to `path`).
//       With --workers=W the points fan out through a cluster coordinator
//       (same flags as the coordinator command); one point = one run
//       fingerprint, so with --result-cache a repeated lattice (--repeat=N,
//       or re-running the command against long-lived workers) dispatches
//       zero shards. --telemetry-port serves sweep progress in /healthz.
//
// Observability (simulate/suite/stream; see docs/OBSERVABILITY.md):
//   --metrics[=path]     enable the metrics registry; print a per-phase
//                        breakdown and the registry dump (text to stdout, or
//                        to `path` — JSON when it ends in .json).
//   --trace-out=<file>   record scoped spans and write Chrome trace-event
//                        JSON loadable in chrome://tracing / Perfetto. The
//                        target directory must exist and be writable (checked
//                        up front, before the run).
//   --telemetry-port=N   (serve/coordinator) serve live GET /metrics
//                        (Prometheus), /healthz (health JSON, with
//                        ?last_errors=N flight-recorder post-mortems), and
//                        /tracez (Chrome trace) on 127.0.0.1:N while the
//                        command runs (0 = ephemeral; the bound port is
//                        printed).
//
// Exit codes: 0 success, 2 bad usage, 3 I/O failure (missing/unwritable
// files), 4 corrupt data or violated invariant (CheckError), 5 any other
// internal error, 6 graceful drain after SIGTERM/SIGINT (progress journaled
// — not a failure), 7 forced exit on a second signal.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/artifacts.h"
#include "common/check.h"
#include "common/table.h"
#include "core/analytic_predictor.h"
#include "core/metrics.h"
#include "core/simulator.h"
#include "core/streaming.h"
#include "core/suite.h"
#include "device/fault.h"
#include "dist/coordinator.h"
#include "dist/worker.h"
#include "net/signal_pipe.h"
#include "net/socket.h"
#include "obs/obs.h"
#include "obs/telemetry_http.h"
#include "service/service.h"
#include "sweep/sweep.h"
#include "trace/stream.h"

using namespace mlsim;

namespace {

/// Bad flag or argument value — maps to exit code 2 (bad usage) in main(),
/// distinct from I/O failures (3), corrupt data (4), and bugs (5).
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Graceful drain after SIGTERM/SIGINT: not a failure — progress was
/// journaled (coordinator) or in-flight requests finished (serve).
constexpr int kExitDrained = 6;
/// A second signal while draining: immediate _exit from the handler.
constexpr int kExitForced = 7;

/// Strict unsigned decimal parse. Unlike std::stoull, rejects (with a
/// distinct message each) empty values, signs — strtoull silently wraps
/// "-1" to 2^64-1 — garbage suffixes ("10x"), and overflow.
std::uint64_t parse_u64(const char* what, const std::string& text) {
  if (text.empty()) throw UsageError(std::string(what) + " needs a value");
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw UsageError(std::string(what) + ": '" + text +
                       "' is not a non-negative integer");
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    throw UsageError(std::string(what) + ": '" + text +
                     "' overflows a 64-bit integer");
  }
  return v;
}

std::size_t parse_size(const char* what, const std::string& text) {
  const std::uint64_t v = parse_u64(what, text);
  if (v > std::numeric_limits<std::size_t>::max()) {
    throw UsageError(std::string(what) + ": '" + text + "' is too large");
  }
  return static_cast<std::size_t>(v);
}

double parse_finite(const char* what, const std::string& text) {
  if (text.empty()) throw UsageError(std::string(what) + " needs a value");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || end == text.c_str() ||
      errno == ERANGE || !std::isfinite(v)) {
    throw UsageError(std::string(what) + ": '" + text +
                     "' is not a finite number");
  }
  return v;
}

/// A probability flag: finite and within [0, 1].
double parse_rate(const char* what, const std::string& text) {
  const double v = parse_finite(what, text);
  if (v < 0.0 || v > 1.0) {
    throw UsageError(std::string(what) + ": '" + text +
                     "' must be in [0, 1]");
  }
  return v;
}

struct ObsFlags {
  bool metrics = false;
  std::string metrics_path;  // empty = stdout
  std::string trace_out;

  bool active() const { return metrics || !trace_out.empty(); }
};

bool parse_obs_flag(const std::string& s, ObsFlags& f) {
  if (s == "--metrics") {
    f.metrics = true;
    return true;
  }
  if (s.rfind("--metrics=", 0) == 0) {
    f.metrics = true;
    f.metrics_path = s.substr(10);
    return true;
  }
  if (s.rfind("--trace-out=", 0) == 0) {
    f.trace_out = s.substr(12);
    return true;
  }
  return false;
}

/// Up-front rejection of an unwritable --trace-out target: the span dump
/// happens at exit time, after the (possibly long) run — discovering only
/// then that the directory does not exist wastes the whole run.
void check_trace_out_writable(const std::string& path) {
  if (path.empty()) return;
  namespace fs = std::filesystem;
  const fs::path p(path);
  if (fs::exists(p) && fs::is_directory(p)) {
    throw UsageError("--trace-out: '" + path + "' is a directory, not a file");
  }
  const fs::path dir = p.has_parent_path() ? p.parent_path() : fs::path(".");
  if (!fs::exists(dir) || !fs::is_directory(dir)) {
    throw UsageError("--trace-out: directory '" + dir.string() +
                     "' does not exist");
  }
  std::error_code ec;
  const fs::path probe = dir / ".mlsim_trace_out_probe";
  std::ofstream os(probe);
  if (!os.is_open()) {
    throw UsageError("--trace-out: directory '" + dir.string() +
                     "' is not writable");
  }
  os.close();
  fs::remove(probe, ec);
}

void enable_obs(const ObsFlags& f) {
  check_trace_out_writable(f.trace_out);
  if (!f.active()) return;
  if (!obs::kCompiledIn) {
    std::fprintf(stderr, "note: built with MLSIM_OBS_DISABLE=ON; --metrics and "
                         "--trace-out will produce empty output\n");
  }
  obs::set_enabled(true);
  obs::reset_trace();
}

void finish_obs(const ObsFlags& f) {
  if (!f.active()) return;
  if (f.metrics) {
    if (f.metrics_path.empty()) {
      std::printf("-- metrics --\n");
      obs::default_registry().write_text(std::cout);
    } else {
      std::ofstream os(f.metrics_path);
      if (!os.is_open()) {
        std::fprintf(stderr, "cannot write metrics to %s\n",
                     f.metrics_path.c_str());
      } else {
        const bool json = f.metrics_path.size() >= 5 &&
                          f.metrics_path.rfind(".json") ==
                              f.metrics_path.size() - 5;
        if (json) {
          obs::default_registry().write_json(os);
        } else {
          obs::default_registry().write_text(os);
        }
        std::printf("[metrics written to %s]\n", f.metrics_path.c_str());
      }
    }
  }
  if (!f.trace_out.empty()) {
    if (obs::write_chrome_trace_file(f.trace_out)) {
      std::printf("[trace with %llu spans written to %s — load in "
                  "chrome://tracing or ui.perfetto.dev]\n",
                  static_cast<unsigned long long>(obs::recorded_events()),
                  f.trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", f.trace_out.c_str());
    }
  }
}

/// §IV per-phase simulated-time breakdown of a single-device run.
void print_phase_table(const core::SimOutput& out) {
  const core::StepProfile& pr = out.profile;
  const double total = pr.total();
  Table t({"phase", "us/instr", "share %"});
  const auto row = [&](const std::string& name, double v) {
    t.add_row({name, v, total > 0.0 ? v / total * 100.0 : 0.0});
  };
  row("queue push", pr.queue_push);
  row("input construction", pr.input_construct);
  row("H2D copy", pr.h2d);
  row("transpose", pr.transpose);
  row("inference", pr.inference);
  row("update/retire", pr.update_retire);
  t.add_row({std::string("total"), total, 100.0});
  t.set_precision(4);
  t.print(std::cout);
}

trace::EncodedTrace acquire(const std::string& what, std::size_t n) {
  if (std::filesystem::exists(what)) return trace::EncodedTrace::load(what);
  return core::labeled_trace(what, n == 0 ? 200000 : n);
}

/// Split a "key=value" / "key=v1,v2,..." flag operand. The axis registry
/// does the semantic validation; this only rejects a missing '='.
std::pair<std::string, std::string> split_axis_flag(const char* what,
                                                    const std::string& s) {
  const auto eq = s.find('=');
  if (eq == std::string::npos || eq == 0 || eq == s.size() - 1) {
    throw UsageError(std::string(what) + ": '" + s +
                     "' is not of the form key=value");
  }
  return {s.substr(0, eq), s.substr(eq + 1)};
}

/// Lattice validation errors on the command line are *usage* errors (exit
/// 2), not corrupt data (4): the run never started.
template <typename F>
void validate_as_usage(F&& f) {
  try {
    f();
  } catch (const CheckError& e) {
    throw UsageError(e.what());
  }
}

int cmd_trace(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: mlsim_cli trace <benchmark> <instructions> [out.bin]\n");
    return 2;
  }
  const std::string abbr = argv[2];
  const std::size_t n = parse_size("<instructions>", argv[3]);
  const auto tr = core::labeled_trace(abbr, n);
  std::printf("generated %zu labeled instructions of %s (CPI %.3f)\n", tr.size(),
              abbr.c_str(),
              static_cast<double>(core::total_cycles_from_targets(tr)) /
                  static_cast<double>(tr.size()));
  if (argc > 4) {
    tr.save(argv[4]);
    std::printf("saved to %s\n", argv[4]);
  }
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: mlsim_cli simulate <benchmark|trace.bin> "
                         "[instructions] [--parallel=P] [--gpus=G] "
                         "[--context=C] [--no-recovery] [--fault-kill=R] "
                         "[--fault-corrupt=R] [--fault-straggler=R] "
                         "[--fault-seed=S] [--retries=N] [--checkpoint[=path]] "
                         "[--resume] [--set key=value]... [--metrics[=path]] "
                         "[--trace-out=file.json]\n");
    return 2;
  }
  std::size_t n = 0, parallel = 0, gpus = 1, context = 64, retries = 3;
  bool recovery = true, checkpoint = false, resume = false;
  std::string checkpoint_path;
  device::FaultOptions fault;
  fault.seed = 1;
  bool any_fault = false;
  std::vector<std::pair<std::string, std::string>> sets;
  ObsFlags obs_flags;
  for (int i = 3; i < argc; ++i) {
    const std::string s = argv[i];
    if (s.rfind("--parallel=", 0) == 0) {
      parallel = parse_size("--parallel", s.substr(11));
    }
    else if (s == "--set") {
      if (i + 1 >= argc) throw UsageError("--set needs a key=value operand");
      sets.push_back(split_axis_flag("--set", argv[++i]));
    } else if (s.rfind("--set=", 0) == 0) {
      sets.push_back(split_axis_flag("--set", s.substr(6)));
    }
    else if (s.rfind("--gpus=", 0) == 0) gpus = parse_size("--gpus", s.substr(7));
    else if (s.rfind("--context=", 0) == 0) {
      context = parse_size("--context", s.substr(10));
    }
    else if (s == "--no-recovery") recovery = false;
    else if (s.rfind("--fault-kill=", 0) == 0) {
      fault.device_kill_rate = parse_rate("--fault-kill", s.substr(13));
      any_fault = true;
    } else if (s.rfind("--fault-corrupt=", 0) == 0) {
      fault.output_corrupt_rate = parse_rate("--fault-corrupt", s.substr(16));
      any_fault = true;
    } else if (s.rfind("--fault-straggler=", 0) == 0) {
      fault.straggler_rate = parse_rate("--fault-straggler", s.substr(18));
      any_fault = true;
    } else if (s.rfind("--fault-seed=", 0) == 0) {
      fault.seed = parse_u64("--fault-seed", s.substr(13));
    } else if (s.rfind("--retries=", 0) == 0) {
      retries = parse_size("--retries", s.substr(10));
    } else if (s == "--checkpoint") {
      checkpoint = true;
    } else if (s.rfind("--checkpoint=", 0) == 0) {
      checkpoint = true;
      checkpoint_path = s.substr(13);
    } else if (s == "--resume") {
      checkpoint = true;
      resume = true;
    }
    else if (parse_obs_flag(s, obs_flags)) continue;
    else if (s[0] != '-') n = parse_size("<instructions>", s);
    else {
      std::fprintf(stderr, "unknown flag %s\n", s.c_str());
      return 2;
    }
  }
  if (parallel == 0 && (any_fault || checkpoint)) {
    std::fprintf(stderr, "--fault-*/--checkpoint/--resume require "
                         "--parallel=P (fault tolerance is a parallel-"
                         "simulation feature)\n");
    return 2;
  }
  // --set alters the machine the *trace* is generated with; the predictor
  // and engine path stay identical (docs/SWEEPS.md), which is what makes a
  // sweep point bit-identical to this command.
  uarch::MachineConfig machine;
  if (!sets.empty()) {
    if (std::filesystem::exists(argv[2])) {
      throw UsageError("--set regenerates the trace for the modified machine "
                       "and needs a benchmark name, not a trace file");
    }
    validate_as_usage([&] {
      for (const auto& [key, value] : sets) {
        sweep::apply_axis(machine, key, value);
      }
    });
  }
  enable_obs(obs_flags);
  const auto tr = sets.empty()
                      ? acquire(argv[2], n)
                      : core::labeled_trace(argv[2], n == 0 ? 200000 : n,
                                            machine);
  core::MLSimulator::Options opts;
  opts.context_length = context;
  core::MLSimulator sim(opts);

  if (parallel == 0) {
    const auto out = sim.simulate(tr);
    // With --metrics the aggregate one-liner grows into the full §IV
    // per-phase breakdown the paper's Fig. 2/11-16 reason about.
    if (obs_flags.metrics) print_phase_table(out);
    std::printf("single device: CPI %.4f | err vs truth %+.2f%% | %.3f MIPS "
                "(modeled) | ctx occupancy %.2f\n",
                out.cpi(),
                tr.labeled() ? sim.cpi_error_percent(tr, out.cpi()) : 0.0,
                out.mips(), out.avg_context_occupancy);
  } else {
    core::ParallelSimOptions po =
        sim.parallel_options(parallel, gpus, recovery, recovery);
    const device::FaultInjector injector(fault);
    if (any_fault) po.faults = &injector;
    po.max_retries_per_partition = retries;
    if (checkpoint) {
      po.checkpoint_path = checkpoint_path.empty()
                               ? artifact_path("mlsim_cli_simulate.ckpt")
                               : std::filesystem::path(checkpoint_path);
      po.resume = resume;
    }
    const auto out = sim.simulate_parallel(tr, po);
    // The exact cycle total is what `sweep --json` reports per point, so a
    // single standalone run can be checked bit-identical against a sweep row.
    std::printf("parallel (%zu sub-traces, %zu GPUs, recovery %s): CPI %.4f | "
                "%llu cycles | err vs truth %+.2f%% | %.2f MIPS (modeled) | "
                "corrected %zu\n",
                parallel, gpus, recovery ? "on" : "off", out.cpi(),
                static_cast<unsigned long long>(out.total_cycles),
                tr.labeled() ? sim.cpi_error_percent(tr, out.cpi()) : 0.0,
                out.mips(), out.corrected_instructions);
    if (any_fault || out.resumed) {
      std::printf("fault recovery: %zu failed partitions | %zu retries | "
                  "%zu degraded | %zu lost devices | backoff %.0f us%s\n",
                  out.failed_partitions.size(), out.retries,
                  out.degraded_partitions.size(), out.lost_devices,
                  out.retry_backoff_us,
                  out.resumed ? " | resumed from checkpoint" : "");
    }
  }
  finish_obs(obs_flags);
  return 0;
}

int cmd_suite(int argc, char** argv) {
  ObsFlags obs_flags;
  bool checkpoint = false, resume = false;
  std::string checkpoint_path;
  std::vector<std::string> pos;
  for (int i = 2; i < argc; ++i) {
    const std::string s = argv[i];
    if (parse_obs_flag(s, obs_flags)) continue;
    if (s == "--checkpoint") {
      checkpoint = true;
      continue;
    }
    if (s.rfind("--checkpoint=", 0) == 0) {
      checkpoint = true;
      checkpoint_path = s.substr(13);
      continue;
    }
    if (s == "--resume") {
      checkpoint = true;
      resume = true;
      continue;
    }
    if (!s.empty() && s[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", s.c_str());
      return 2;
    }
    pos.push_back(s);
  }
  const std::size_t n =
      pos.size() > 0 ? parse_size("<instructions-per-benchmark>", pos[0]) : 50000;
  const std::size_t gpus = pos.size() > 1 ? parse_size("<gpus>", pos[1]) : 4;
  enable_obs(obs_flags);
  std::printf("simulating all 21 benchmarks, %zu instructions each, across "
              "%zu modeled GPUs (LPT schedule)\n", n, gpus);

  std::vector<trace::EncodedTrace> traces;
  std::vector<core::SuiteJob> jobs;
  traces.reserve(trace::spec2017_suite().size());
  for (const auto& b : trace::spec2017_suite()) {
    traces.push_back(core::labeled_trace(b.profile.abbr, n));
  }
  for (std::size_t i = 0; i < traces.size(); ++i) {
    jobs.push_back({&traces[i], trace::spec2017_suite()[i].profile.abbr});
  }

  core::AnalyticPredictor pred;
  core::GpuSimOptions opts;
  opts.context_length = 64;
  const std::filesystem::path ckpt =
      checkpoint ? (checkpoint_path.empty()
                        ? artifact_path("mlsim_cli_suite.ckpt")
                        : std::filesystem::path(checkpoint_path))
                 : std::filesystem::path();
  const auto report = core::run_suite(pred, jobs, gpus, opts, ckpt, resume);

  Table t({"benchmark", "device", "CPI", "device time (ms)"});
  for (const auto& j : report.jobs) {
    t.add_row({j.name, static_cast<std::int64_t>(j.device), j.cpi,
               j.sim_time_us / 1000.0});
  }
  t.set_precision(3);
  t.print(std::cout);
  std::printf("makespan %.1f ms | suite throughput %.2f MIPS | device "
              "utilization %.1f%%\n", report.makespan_us / 1000.0, report.mips(),
              report.utilization() * 100.0);
  finish_obs(obs_flags);
  return 0;
}

int cmd_rates(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: mlsim_cli rates <benchmark|trace.bin> [instructions]\n");
    return 2;
  }
  const std::size_t n = argc > 3 ? parse_size("<instructions>", argv[3]) : 0;
  const auto tr = acquire(argv[2], n);
  const auto r = core::trace_rates(tr);
  std::printf("instructions:            %zu\n", tr.size());
  std::printf("memory access fraction:  %.1f%%\n", r.memory_access_fraction * 100);
  std::printf("L1D miss rate:           %.2f%%\n", r.l1d_miss_rate * 100);
  std::printf("L2 miss rate (to mem):   %.2f%%\n", r.l2_miss_rate * 100);
  std::printf("branch mispredict rate:  %.2f%% (%zu branches)\n",
              r.branch_mispredict_rate * 100, r.branches);
  if (tr.labeled()) {
    std::printf("ground-truth CPI:        %.3f\n",
                static_cast<double>(core::total_cycles_from_targets(tr)) /
                    static_cast<double>(tr.size()));
    std::printf("memory bandwidth:        %.1f B/kilocycle\n",
                core::memory_bandwidth_from_targets(tr) * 1000);
  }
  return 0;
}

int cmd_stream(int argc, char** argv) {
  ObsFlags obs_flags;
  std::vector<std::string> pos;
  for (int i = 2; i < argc; ++i) {
    const std::string s = argv[i];
    if (parse_obs_flag(s, obs_flags)) continue;
    if (!s.empty() && s[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", s.c_str());
      return 2;
    }
    pos.push_back(s);
  }
  if (pos.size() < 2) {
    std::fprintf(stderr, "usage: mlsim_cli stream <benchmark> <instructions> "
                         "[context] [--metrics[=path]] [--trace-out=file.json]\n");
    return 2;
  }
  const std::string abbr = pos[0];
  const std::uint64_t n = parse_u64("<instructions>", pos[1]);
  const std::size_t ctx = pos.size() > 2 ? parse_size("[context]", pos[2]) : 64;
  enable_obs(obs_flags);
  trace::LabeledTraceStream stream(trace::find_workload(abbr));
  core::AnalyticPredictor pred;
  const auto res = core::simulate_stream(pred, stream, n, ctx);
  std::printf("streamed %llu instructions of %s (context %zu, bounded memory)\n",
              static_cast<unsigned long long>(res.instructions), abbr.c_str(), ctx);
  std::printf("predicted CPI %.4f | ground-truth CPI %.4f | error %+.2f%%\n",
              res.cpi(), res.truth_cpi(),
              (res.truth_cpi() - res.cpi()) / res.truth_cpi() * 100.0);
  finish_obs(obs_flags);
  return 0;
}

/// A TCP port flag: strict decimal, within [0, 65535] (0 = ephemeral).
std::uint16_t parse_port(const char* what, const std::string& text) {
  const std::uint64_t v = parse_u64(what, text);
  if (v > 65535) {
    throw UsageError(std::string(what) + ": '" + text +
                     "' is not a TCP port (0-65535)");
  }
  return static_cast<std::uint16_t>(v);
}

/// A count/interval flag that must be at least 1.
std::uint64_t parse_positive(const char* what, const std::string& text) {
  const std::uint64_t v = parse_u64(what, text);
  if (v == 0) {
    throw UsageError(std::string(what) + ": '" + text + "' must be >= 1");
  }
  return v;
}

int cmd_coordinator(int argc, char** argv) {
  ObsFlags obs_flags;
  std::vector<std::string> pos;
  std::uint16_t port = 0;
  std::size_t min_workers = 1, parallel = 4, gpus = 1, context = 64;
  int heartbeat_timeout_ms = 2000, run_timeout_ms = 120000;
  bool recovery = true, verify = false;
  bool steal = false;
  double speculate_pct = 0.0;
  std::size_t result_cache = 0;
  bool have_telemetry = false;
  std::uint16_t telemetry_port = 0;
  std::string journal_path;
  bool resume = false, journal_strict = false;
  int drain_timeout_ms = 5000;
  device::FaultOptions fault;
  fault.seed = 1;
  bool any_fault = false;
  for (int i = 2; i < argc; ++i) {
    const std::string s = argv[i];
    if (parse_obs_flag(s, obs_flags)) continue;
    if (s.rfind("--port=", 0) == 0) {
      port = parse_port("--port", s.substr(7));
    } else if (s.rfind("--telemetry-port=", 0) == 0) {
      telemetry_port = parse_port("--telemetry-port", s.substr(17));
      have_telemetry = true;
    } else if (s.rfind("--workers=", 0) == 0) {
      min_workers =
          static_cast<std::size_t>(parse_positive("--workers", s.substr(10)));
    } else if (s.rfind("--heartbeat-ms=", 0) == 0) {
      heartbeat_timeout_ms = static_cast<int>(std::min<std::uint64_t>(
          parse_positive("--heartbeat-ms", s.substr(15)),
          std::numeric_limits<int>::max()));
    } else if (s.rfind("--timeout-ms=", 0) == 0) {
      run_timeout_ms = static_cast<int>(std::min<std::uint64_t>(
          parse_u64("--timeout-ms", s.substr(13)),
          std::numeric_limits<int>::max()));
    } else if (s.rfind("--parallel=", 0) == 0) {
      parallel = parse_size("--parallel", s.substr(11));
    } else if (s.rfind("--gpus=", 0) == 0) {
      gpus = parse_size("--gpus", s.substr(7));
    } else if (s.rfind("--context=", 0) == 0) {
      context = parse_size("--context", s.substr(10));
    } else if (s == "--no-recovery") {
      recovery = false;
    } else if (s.rfind("--fault-worker-kill=", 0) == 0) {
      fault.worker_kill_rate = parse_rate("--fault-worker-kill", s.substr(20));
      any_fault = true;
    } else if (s.rfind("--fault-seed=", 0) == 0) {
      fault.seed = parse_u64("--fault-seed", s.substr(13));
    } else if (s == "--verify") {
      verify = true;
    } else if (s == "--steal") {
      steal = true;
    } else if (s.rfind("--speculate-pct=", 0) == 0) {
      const std::uint64_t p =
          parse_positive("--speculate-pct", s.substr(16));
      if (p > 100) {
        throw UsageError("--speculate-pct: '" + s.substr(16) +
                         "' must be a percentile in 1..100");
      }
      speculate_pct = static_cast<double>(p);
    } else if (s == "--result-cache") {
      result_cache = 1024;
    } else if (s.rfind("--result-cache=", 0) == 0) {
      result_cache = static_cast<std::size_t>(
          parse_positive("--result-cache", s.substr(15)));
    } else if (s.rfind("--journal=", 0) == 0) {
      journal_path = s.substr(10);
      if (journal_path.empty()) throw UsageError("--journal needs a path");
    } else if (s == "--resume") {
      resume = true;
    } else if (s == "--journal-strict") {
      journal_strict = true;
    } else if (s.rfind("--drain-timeout-ms=", 0) == 0) {
      drain_timeout_ms = static_cast<int>(std::min<std::uint64_t>(
          parse_positive("--drain-timeout-ms", s.substr(19)),
          std::numeric_limits<int>::max()));
    } else if (!s.empty() && s[0] != '-') {
      pos.push_back(s);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", s.c_str());
      return 2;
    }
  }
  if (pos.empty()) {
    std::fprintf(stderr,
                 "usage: mlsim_cli coordinator <benchmark|trace.bin> "
                 "[instructions] [--port=N] [--telemetry-port=N] [--workers=W] "
                 "[--heartbeat-ms=M] [--timeout-ms=T] [--parallel=P] "
                 "[--gpus=G] [--context=C] [--no-recovery] "
                 "[--fault-worker-kill=R] [--fault-seed=S] [--verify] "
                 "[--steal] [--speculate-pct=P] [--result-cache[=N]] "
                 "[--journal=PATH] [--resume] [--journal-strict] "
                 "[--drain-timeout-ms=T] "
                 "[--metrics[=path]] [--trace-out=file.json]\n");
    return 2;
  }
  if (resume && journal_path.empty()) {
    throw UsageError("--resume requires --journal=PATH");
  }
  const std::size_t n =
      pos.size() > 1 ? parse_size("[instructions]", pos[1]) : 20000;
  enable_obs(obs_flags);
  // Bridge SIGTERM/SIGINT into the coordinator poll loop: first signal
  // starts a graceful drain (exit 6), second force-exits 7. Installed
  // before trace acquisition so a signal during slow labeling is queued
  // for the run loop instead of killing the process with work undone.
  net::SignalPipe& sig = net::SignalPipe::install(kExitForced);
  const auto tr = acquire(pos[0], n);

  core::MLSimulator::Options mopts;
  mopts.context_length = context;
  core::MLSimulator sim(mopts);
  core::ParallelSimOptions po =
      sim.parallel_options(parallel, gpus, recovery, recovery);
  const device::FaultInjector injector(fault);
  if (any_fault) po.faults = &injector;

  dist::CoordinatorOptions co;
  co.min_workers = min_workers;
  co.heartbeat_timeout_ms = heartbeat_timeout_ms;
  co.run_timeout_ms = run_timeout_ms;
  co.steal = steal;
  co.speculate_pct = speculate_pct;
  co.result_cache_entries = result_cache;
  co.journal_path = journal_path;
  co.resume = resume;
  co.journal_strict = journal_strict;
  co.drain_timeout_ms = drain_timeout_ms;
  co.wake_fd = sig.fd();
  dist::DistCoordinator coord(net::TcpListener::bind(port), co);
  std::printf("coordinator listening on 127.0.0.1:%u — waiting for %zu "
              "worker(s); join with:\n  mlsim_cli worker "
              "--connect=127.0.0.1:%u\n",
              coord.port(), min_workers, coord.port());
  obs::TelemetryServer telemetry;
  if (have_telemetry) {
    if (obs::kCompiledIn && !obs::enabled()) obs::set_enabled(true);
    obs::TelemetryOptions to;
    to.port = telemetry_port;
    to.health = [&coord](std::size_t errs) { return coord.cluster_json(errs); };
    if (telemetry.start(std::move(to))) {
      std::printf("telemetry on http://127.0.0.1:%u/metrics (also /healthz, "
                  "/tracez)\n", telemetry.port());
    } else {
      std::fprintf(stderr, "note: built with MLSIM_OBS_DISABLE=ON; "
                           "--telemetry-port is inert\n");
    }
  }
  std::fflush(stdout);

  const auto out = coord.run(tr, po);
  const auto& st = coord.stats();
  std::printf("distributed (%zu sub-traces, %zu GPU blocks): CPI %.4f | "
              "err vs truth %+.2f%% | %.2f MIPS (modeled) | corrected %zu\n",
              parallel, gpus, out.cpi(),
              tr.labeled() ? sim.cpi_error_percent(tr, out.cpi()) : 0.0,
              out.mips(), out.corrected_instructions);
  std::printf("cluster: %zu joined | %zu lost | %zu departed | "
              "%zu dispatched | %zu reassigned | %zu duplicates dropped | "
              "%zu heartbeats\n",
              st.workers_joined, st.workers_lost, st.workers_departed,
              st.shards_dispatched, st.reassignments, st.duplicates_dropped,
              st.heartbeats);
  if (steal || speculate_pct > 0.0 || result_cache > 0 ||
      !journal_path.empty()) {
    std::printf("elastic: %zu stolen | %zu speculated | cache %zu hits / "
                "%zu misses / %zu evictions | %zu rejoined | "
                "%zu replayed from journal\n",
                st.steals, st.speculations, st.cache_hits, st.cache_misses,
                st.cache_evictions, st.workers_rejoined, st.journal_replayed);
  }
  if (verify) {
    const auto local = sim.simulate_parallel(tr, po);
    const bool same = local.total_cycles == out.total_cycles &&
                      local.corrected_instructions == out.corrected_instructions;
    std::printf("verify vs in-process: local CPI %.6f, distributed CPI %.6f "
                "— %s\n", local.cpi(), out.cpi(),
                same ? "bit-identical" : "MISMATCH");
    if (!same) {
      throw CheckError("distributed result diverged from the in-process "
                       "engine");
    }
  }
  coord.shutdown_workers();
  finish_obs(obs_flags);
  if (coord.drain_requested()) {
    // The run finished inside the drain window: report success, but exit
    // with the drain code so a supervisor sees "terminated by request".
    std::printf("drain requested — run completed before the deadline\n");
    return kExitDrained;
  }
  return 0;
}

int cmd_worker(int argc, char** argv) {
  dist::WorkerConfig cfg;
  bool have_endpoint = false;
  for (int i = 2; i < argc; ++i) {
    const std::string s = argv[i];
    std::string endpoint;
    if (s.rfind("--connect=", 0) == 0) {
      endpoint = s.substr(10);
    } else if (s.rfind("--heartbeat-ms=", 0) == 0) {
      cfg.heartbeat_ms = static_cast<int>(std::min<std::uint64_t>(
          parse_positive("--heartbeat-ms", s.substr(15)),
          std::numeric_limits<int>::max()));
      continue;
    } else if (s == "--no-reconnect") {
      cfg.reconnect_after_kill = false;
      continue;
    } else if (s.rfind("--leave-after=", 0) == 0) {
      cfg.leave_after_shards = static_cast<std::size_t>(
          parse_positive("--leave-after", s.substr(14)));
      continue;
    } else if (s.rfind("--reconnect-budget=", 0) == 0) {
      cfg.reconnect_budget = static_cast<int>(std::min<std::uint64_t>(
          parse_positive("--reconnect-budget", s.substr(19)),
          std::numeric_limits<int>::max()));
      continue;
    } else if (!s.empty() && s[0] != '-') {
      endpoint = s;  // bare host:port positional
    } else {
      std::fprintf(stderr, "unknown flag %s\n", s.c_str());
      return 2;
    }
    const auto hp = net::parse_host_port(endpoint);
    if (!hp.has_value()) {
      throw UsageError("--connect: '" + endpoint +
                       "' is not a valid host:port endpoint");
    }
    cfg.host = hp->host;
    cfg.port = hp->port;
    have_endpoint = true;
  }
  if (!have_endpoint) {
    std::fprintf(stderr, "usage: mlsim_cli worker --connect=host:port "
                         "[--heartbeat-ms=M] [--no-reconnect] "
                         "[--leave-after=N] [--reconnect-budget=N]\n");
    return 2;
  }
  std::printf("worker joining %s:%u\n", cfg.host.c_str(), cfg.port);
  std::fflush(stdout);
  // Record spans so a coordinator-propagated trace context (AssignMsg
  // trace_id) produces worker spans in the merged cross-process trace. The
  // ring is fixed-size and updates are lock-free, so this stays cheap even
  // when no coordinator ever requests tracing.
  if (obs::kCompiledIn) obs::set_enabled(true);
  const auto st = dist::run_worker(cfg);
  std::printf("worker done: %zu shard(s) computed across %zu session(s), "
              "%zu simulated kill(s), %zu rejoin(s)\n",
              st.shards_computed, st.sessions, st.kills_simulated,
              st.rejoins);
  return 0;
}

/// Soak the resilient service: a burst of requests across all priority
/// classes, optionally under chaos (fault injection + real worker stalls),
/// with every typed outcome tallied at the end.
int cmd_serve(int argc, char** argv) {
  ObsFlags obs_flags;
  std::vector<std::string> pos;
  std::size_t requests = 32, workers = 2, queue = 8, parallel = 4;
  std::size_t tenant_quota = 0;
  std::uint64_t deadline_ms = 0, stall_ms = 0;
  std::uint64_t drain_timeout_ms = 5000;
  bool have_telemetry = false;
  std::uint16_t telemetry_port = 0;
  bool batching = false;
  std::size_t batch_max = 64;
  std::uint64_t batch_wait_us = 100;
  device::FaultOptions fault;
  fault.seed = 1;
  bool any_fault = false;
  for (int i = 2; i < argc; ++i) {
    const std::string s = argv[i];
    if (parse_obs_flag(s, obs_flags)) continue;
    if (s.rfind("--requests=", 0) == 0) {
      requests = parse_size("--requests", s.substr(11));
    } else if (s.rfind("--telemetry-port=", 0) == 0) {
      telemetry_port = parse_port("--telemetry-port", s.substr(17));
      have_telemetry = true;
    } else if (s.rfind("--workers=", 0) == 0) {
      workers = parse_size("--workers", s.substr(10));
    } else if (s.rfind("--queue=", 0) == 0) {
      queue = parse_size("--queue", s.substr(8));
    } else if (s.rfind("--parallel=", 0) == 0) {
      parallel = parse_size("--parallel", s.substr(11));
    } else if (s.rfind("--deadline-ms=", 0) == 0) {
      deadline_ms = parse_u64("--deadline-ms", s.substr(14));
    } else if (s.rfind("--tenant-quota=", 0) == 0) {
      tenant_quota = static_cast<std::size_t>(
          parse_positive("--tenant-quota", s.substr(15)));
    } else if (s.rfind("--stall-ms=", 0) == 0) {
      stall_ms = parse_u64("--stall-ms", s.substr(11));
    } else if (s.rfind("--drain-timeout-ms=", 0) == 0) {
      drain_timeout_ms = parse_positive("--drain-timeout-ms", s.substr(19));
    } else if (s == "--batch") {
      batching = true;
    } else if (s.rfind("--batch=", 0) == 0) {
      batching = true;
      batch_max = parse_size("--batch", s.substr(8));
    } else if (s.rfind("--batch-wait-us=", 0) == 0) {
      batching = true;
      batch_wait_us = parse_u64("--batch-wait-us", s.substr(16));
    } else if (s.rfind("--fault-kill=", 0) == 0) {
      fault.device_kill_rate = parse_rate("--fault-kill", s.substr(13));
      any_fault = true;
    } else if (s.rfind("--fault-corrupt=", 0) == 0) {
      fault.output_corrupt_rate = parse_rate("--fault-corrupt", s.substr(16));
      any_fault = true;
    } else if (s.rfind("--fault-straggler=", 0) == 0) {
      fault.straggler_rate = parse_rate("--fault-straggler", s.substr(18));
      any_fault = true;
    } else if (s.rfind("--fault-seed=", 0) == 0) {
      fault.seed = parse_u64("--fault-seed", s.substr(13));
    } else if (!s.empty() && s[0] != '-') {
      pos.push_back(s);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", s.c_str());
      return 2;
    }
  }
  if (pos.empty()) {
    std::fprintf(stderr,
                 "usage: mlsim_cli serve <benchmark|trace.bin> [instructions] "
                 "[--requests=N] [--workers=W] [--queue=Q] [--parallel=P] "
                 "[--deadline-ms=D] [--tenant-quota=N] [--telemetry-port=N] "
                 "[--drain-timeout-ms=T] [--batch[=N]] "
                 "[--batch-wait-us=U] [--fault-kill=R] [--fault-corrupt=R] "
                 "[--fault-straggler=R] [--fault-seed=S] [--stall-ms=M] "
                 "[--metrics[=path]] [--trace-out=file.json]\n");
    return 2;
  }
  const std::size_t n =
      pos.size() > 1 ? parse_size("[instructions]", pos[1]) : 20000;
  enable_obs(obs_flags);
  const auto tr = acquire(pos[0], n);

  core::AnalyticPredictor primary, fallback;
  service::ServiceOptions so;
  so.num_workers = workers;
  so.queue_capacity = queue;
  so.tenant_quota = tenant_quota;
  so.batching = batching;
  so.batcher.max_batch = batch_max;
  so.batcher.max_wait = std::chrono::microseconds(batch_wait_us);
  service::SimulationService svc(primary, fallback, so);
  const device::FaultInjector injector(fault);

  obs::TelemetryServer telemetry;
  if (have_telemetry) {
    if (obs::kCompiledIn && !obs::enabled()) obs::set_enabled(true);
    obs::TelemetryOptions to;
    to.port = telemetry_port;
    to.health = [&svc](std::size_t errs) { return svc.health_json(errs); };
    if (telemetry.start(std::move(to))) {
      std::printf("telemetry on http://127.0.0.1:%u/metrics (also /healthz, "
                  "/tracez)\n", telemetry.port());
    } else {
      std::fprintf(stderr, "note: built with MLSIM_OBS_DISABLE=ON; "
                           "--telemetry-port is inert\n");
    }
  }

  std::printf("serving %zu requests (%zu workers, queue %zu, %zu sub-traces"
              "%s%s%s)\n",
              requests, workers, queue, parallel,
              any_fault ? ", chaos on" : "",
              deadline_ms ? ", deadline set" : "",
              batching ? ", batching on" : "");
  std::vector<service::SimulationService::Ticket> tickets;
  tickets.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    service::Request rq;
    rq.trace = &tr;
    rq.engine = service::EngineKind::kParallel;
    rq.num_subtraces = parallel;
    rq.priority = static_cast<service::Priority>(i % service::kNumPriorities);
    if (tenant_quota > 0) {
      // Spread the soak across three synthetic tenants so the quota and the
      // fair-share drain actually engage.
      rq.tenant = "tenant-" + std::to_string(i % 3);
    }
    if (deadline_ms > 0) rq.deadline = std::chrono::milliseconds(deadline_ms);
    if (any_fault) {
      rq.faults = &injector;
      rq.straggler_stall = std::chrono::milliseconds(stall_ms);
    }
    tickets.push_back(svc.submit(std::move(rq)));
  }

  // Collect outcomes, watching the signal pipe: a SIGTERM/SIGINT mid-soak
  // drains the service (stop admitting, let in-flight requests finish,
  // cancel the rest) instead of dying with futures unresolved.
  net::SignalPipe& sig = net::SignalPipe::install(kExitForced);
  bool drained = false;
  std::size_t by_status[9] = {};
  for (auto& t : tickets) {
    while (t.future.wait_for(std::chrono::milliseconds(50)) !=
           std::future_status::ready) {
      if (drained || !sig.signalled()) continue;
      std::printf("signal %d: draining (timeout %llu ms)\n",
                  sig.last_signal(),
                  static_cast<unsigned long long>(drain_timeout_ms));
      std::fflush(stdout);
      // shutdown() blocks until in-flight work finishes — bound it with
      // the drain deadline. On timeout, leave without running destructors
      // (the stopper thread still owns the service).
      auto stopper =
          std::async(std::launch::async, [&svc] { svc.shutdown(); });
      if (stopper.wait_for(std::chrono::milliseconds(drain_timeout_ms)) ==
          std::future_status::timeout) {
        std::fprintf(stderr, "drain deadline exceeded — exiting\n");
        std::_Exit(kExitDrained);
      }
      drained = true;
    }
    const service::Response rsp = t.future.get();
    ++by_status[static_cast<std::size_t>(rsp.status)];
  }
  Table table({"outcome", "requests"});
  for (std::size_t s = 0; s < 9; ++s) {
    if (by_status[s] == 0) continue;
    table.add_row({std::string(to_string(
                       static_cast<service::ResponseStatus>(s))),
                   static_cast<std::int64_t>(by_status[s])});
  }
  table.print(std::cout);
  const auto st = svc.stats();
  std::printf("hangs detected %llu | hang requeues %llu | degraded %llu | "
              "breaker %s (%llu trips)\n",
              static_cast<unsigned long long>(st.hangs_detected),
              static_cast<unsigned long long>(st.hang_requeues),
              static_cast<unsigned long long>(st.degraded),
              to_string(svc.breaker_state()),
              static_cast<unsigned long long>(svc.breaker_trips()));
  if (const auto* b = svc.batcher()) {
    const auto bs = b->stats();
    std::printf("batcher: %llu windows in %llu flushes (max batch %zu) | "
                "modeled inference %.1f us batched vs %.1f us unbatched\n",
                static_cast<unsigned long long>(bs.items_predicted),
                static_cast<unsigned long long>(bs.flushes),
                bs.max_batch_observed, bs.modeled_batched_us,
                bs.modeled_unbatched_us);
  }
  std::printf("health: %s\n", svc.health_json().c_str());
  svc.shutdown();
  finish_obs(obs_flags);
  return drained ? kExitDrained : 0;
}

/// Serialize a sweep report as JSON (stable field order, lattice order).
std::string sweep_report_json(const sweep::SweepSpec& spec,
                              const sweep::SweepReport& report) {
  std::ostringstream os;
  os << "{\"benchmark\":\"" << spec.benchmark << '"'
     << ",\"instructions\":" << spec.instructions
     << ",\"points\":[";
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    const auto& p = report.points[i];
    if (i > 0) os << ',';
    os << "{\"index\":" << p.point.index << ",\"settings\":{";
    for (std::size_t j = 0; j < p.point.settings.size(); ++j) {
      if (j > 0) os << ',';
      os << '"' << p.point.settings[j].first << "\":\""
         << p.point.settings[j].second << '"';
    }
    os << "},\"cpi\":" << p.cpi << ",\"truth_cpi\":" << p.truth_cpi
       << ",\"area\":" << p.area << ",\"total_cycles\":" << p.total_cycles
       << ",\"on_frontier\":" << (p.on_frontier ? "true" : "false") << '}';
  }
  os << "],\"frontier\":[";
  for (std::size_t i = 0; i < report.frontier.size(); ++i) {
    if (i > 0) os << ',';
    os << report.frontier[i];
  }
  os << "],\"sensitivity\":[";
  for (std::size_t i = 0; i < report.sensitivity.size(); ++i) {
    const auto& s = report.sensitivity[i];
    if (i > 0) os << ',';
    os << "{\"axis\":\"" << s.key << "\",\"span\":" << s.span
       << ",\"mean_cpi\":{";
    for (std::size_t j = 0; j < s.values.size(); ++j) {
      if (j > 0) os << ',';
      os << '"' << s.values[j] << "\":" << s.mean_cpi[j];
    }
    os << "}}";
  }
  os << "],\"elapsed_s\":" << report.elapsed_s
     << ",\"points_per_sec\":" << report.points_per_sec << '}';
  return os.str();
}

/// Design-space exploration: expand a config lattice, simulate every point
/// (locally or through a worker cluster), rank the Pareto frontier.
int cmd_sweep(int argc, char** argv) {
  ObsFlags obs_flags;
  std::vector<std::string> pos;
  std::string spec_path;
  std::vector<sweep::SweepAxis> axes;
  std::size_t parallel = 4, gpus = 1, context = 64;
  bool recovery = true;
  std::uint64_t seed = 1;
  bool pareto_only = false;
  std::size_t top = 0;
  bool json = false;
  std::string json_path;
  std::uint16_t port = 0;
  std::size_t workers = 0;
  int heartbeat_timeout_ms = 2000, run_timeout_ms = 120000;
  bool steal = false;
  std::size_t result_cache = 0;
  std::size_t repeat = 1;
  bool have_telemetry = false;
  std::uint16_t telemetry_port = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string s = argv[i];
    if (parse_obs_flag(s, obs_flags)) continue;
    if (s.rfind("--spec=", 0) == 0) {
      spec_path = s.substr(7);
      if (spec_path.empty()) throw UsageError("--spec needs a path");
    } else if (s == "--axis") {
      if (i + 1 >= argc) {
        throw UsageError("--axis needs a key=v1,v2,... operand");
      }
      const auto [key, values] = split_axis_flag("--axis", argv[++i]);
      sweep::SweepAxis ax;
      ax.key = key;
      std::size_t start = 0;
      while (start <= values.size()) {
        const auto comma = values.find(',', start);
        const std::string v = values.substr(
            start,
            comma == std::string::npos ? std::string::npos : comma - start);
        if (v.empty()) {
          throw UsageError("--axis " + key + ": empty value in list");
        }
        ax.values.push_back(v);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      axes.push_back(std::move(ax));
    } else if (s.rfind("--axis=", 0) == 0) {
      throw UsageError("--axis takes a separate operand: "
                       "--axis key=v1,v2,...");
    } else if (s.rfind("--parallel=", 0) == 0) {
      parallel = static_cast<std::size_t>(
          parse_positive("--parallel", s.substr(11)));
    } else if (s.rfind("--gpus=", 0) == 0) {
      gpus = static_cast<std::size_t>(parse_positive("--gpus", s.substr(7)));
    } else if (s.rfind("--context=", 0) == 0) {
      context = static_cast<std::size_t>(
          parse_positive("--context", s.substr(10)));
    } else if (s == "--no-recovery") {
      recovery = false;
    } else if (s.rfind("--seed=", 0) == 0) {
      seed = parse_u64("--seed", s.substr(7));
    } else if (s == "--pareto") {
      pareto_only = true;
    } else if (s.rfind("--top=", 0) == 0) {
      top = static_cast<std::size_t>(parse_positive("--top", s.substr(6)));
    } else if (s == "--json") {
      json = true;
    } else if (s.rfind("--json=", 0) == 0) {
      json = true;
      json_path = s.substr(7);
      if (json_path.empty()) throw UsageError("--json= needs a path");
    } else if (s.rfind("--port=", 0) == 0) {
      port = parse_port("--port", s.substr(7));
    } else if (s.rfind("--workers=", 0) == 0) {
      workers =
          static_cast<std::size_t>(parse_positive("--workers", s.substr(10)));
    } else if (s.rfind("--heartbeat-ms=", 0) == 0) {
      heartbeat_timeout_ms = static_cast<int>(std::min<std::uint64_t>(
          parse_positive("--heartbeat-ms", s.substr(15)),
          std::numeric_limits<int>::max()));
    } else if (s.rfind("--timeout-ms=", 0) == 0) {
      run_timeout_ms = static_cast<int>(std::min<std::uint64_t>(
          parse_u64("--timeout-ms", s.substr(13)),
          std::numeric_limits<int>::max()));
    } else if (s == "--steal") {
      steal = true;
    } else if (s == "--result-cache") {
      result_cache = 1024;
    } else if (s.rfind("--result-cache=", 0) == 0) {
      result_cache = static_cast<std::size_t>(
          parse_positive("--result-cache", s.substr(15)));
    } else if (s.rfind("--repeat=", 0) == 0) {
      repeat = static_cast<std::size_t>(
          parse_positive("--repeat", s.substr(9)));
    } else if (s.rfind("--telemetry-port=", 0) == 0) {
      telemetry_port = parse_port("--telemetry-port", s.substr(17));
      have_telemetry = true;
    } else if (!s.empty() && s[0] != '-') {
      pos.push_back(s);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", s.c_str());
      return 2;
    }
  }

  if (spec_path.empty() && pos.empty()) {
    std::fprintf(stderr,
                 "usage: mlsim_cli sweep <benchmark> [instructions] | "
                 "--spec=FILE [--axis key=v1,v2,...]... [--parallel=P] "
                 "[--gpus=G] [--context=C] [--no-recovery] [--seed=S] "
                 "[--pareto] [--top=N] [--json[=path]] [--port=N] "
                 "[--workers=W] [--heartbeat-ms=M] [--timeout-ms=T] "
                 "[--steal] [--result-cache[=N]] [--repeat=N] "
                 "[--telemetry-port=N] [--metrics[=path]] "
                 "[--trace-out=file.json]\n");
    return 2;
  }
  if (!spec_path.empty() && !pos.empty()) {
    throw UsageError("--spec and a positional benchmark are mutually "
                     "exclusive (put benchmark/instructions in the spec "
                     "file)");
  }
  if (pos.size() > 2) {
    throw UsageError("sweep takes at most two positionals: <benchmark> "
                     "[instructions]");
  }
  if (result_cache > 0 && workers == 0) {
    throw UsageError("--result-cache is the coordinator's shard cache and "
                     "requires --workers=W");
  }

  sweep::SweepSpec spec;
  if (!spec_path.empty()) {
    spec = sweep::load_spec_text(spec_path);
  } else {
    spec.benchmark = pos[0];
    spec.instructions =
        pos.size() > 1 ? parse_size("[instructions]", pos[1]) : 200000;
  }
  for (auto& ax : axes) spec.axes.push_back(std::move(ax));
  // Strict up-front validation: an unknown axis, a duplicate (including a
  // --axis colliding with a spec-file axis), or an unparsable value — e.g.
  // an unimplemented replacement policy — is a usage error (exit 2), caught
  // before any simulation work runs.
  validate_as_usage([&] { sweep::validate_spec(spec); });

  enable_obs(obs_flags);

  sweep::SweepOptions so;
  so.num_subtraces = parallel;
  so.num_gpus = gpus;
  so.context_length = context;
  so.recovery = recovery;
  so.seed = seed;

  // Sweep progress for /healthz: plain atomics the telemetry thread reads.
  std::atomic<std::size_t> points_done{0};
  std::atomic<std::size_t> iterations_done{0};
  const std::size_t points_total = spec.points();
  so.progress = [&points_done](std::size_t done, std::size_t) {
    points_done.store(done, std::memory_order_relaxed);
  };

  obs::TelemetryServer telemetry;
  if (have_telemetry) {
    if (obs::kCompiledIn && !obs::enabled()) obs::set_enabled(true);
    obs::TelemetryOptions to;
    to.port = telemetry_port;
    to.health = [&points_done, &iterations_done, points_total,
                 repeat](std::size_t) {
      std::ostringstream os;
      os << "{\"status\":\"ok\",\"sweep\":{\"points_total\":" << points_total
         << ",\"points_done\":"
         << points_done.load(std::memory_order_relaxed)
         << ",\"iterations_done\":"
         << iterations_done.load(std::memory_order_relaxed)
         << ",\"iterations\":" << repeat << "}}";
      return os.str();
    };
    if (telemetry.start(std::move(to))) {
      std::printf("telemetry on http://127.0.0.1:%u/metrics (also /healthz, "
                  "/tracez)\n", telemetry.port());
    } else {
      std::fprintf(stderr, "note: built with MLSIM_OBS_DISABLE=ON; "
                           "--telemetry-port is inert\n");
    }
  }

  std::optional<dist::DistCoordinator> coord;
  if (workers > 0) {
    dist::CoordinatorOptions co;
    co.min_workers = workers;
    co.heartbeat_timeout_ms = heartbeat_timeout_ms;
    co.run_timeout_ms = run_timeout_ms;
    co.steal = steal;
    co.result_cache_entries = result_cache;
    coord.emplace(net::TcpListener::bind(port), co);
    so.remote = &*coord;
    std::printf("sweep coordinator listening on 127.0.0.1:%u — waiting for "
                "%zu worker(s); join with:\n  mlsim_cli worker "
                "--connect=127.0.0.1:%u\n",
                coord->port(), workers, coord->port());
  }
  std::printf("sweeping %s: %zu point(s) across %zu axis/axes, %zu "
              "instructions each%s\n",
              spec.benchmark.c_str(), points_total, spec.axes.size(),
              spec.instructions, workers > 0 ? " (distributed)" : "");
  std::fflush(stdout);

  sweep::SweepReport report;
  for (std::size_t it = 0; it < repeat; ++it) {
    std::size_t dispatched0 = 0, cache_hits0 = 0;
    if (coord.has_value()) {
      dispatched0 = coord->stats().shards_dispatched;
      cache_hits0 = coord->stats().cache_hits;
    }
    points_done.store(0, std::memory_order_relaxed);
    report = sweep::run_sweep(spec, so);
    iterations_done.store(it + 1, std::memory_order_relaxed);
    if (repeat > 1 || coord.has_value()) {
      std::printf("iteration %zu/%zu: %zu points in %.3f s (%.2f points/s)",
                  it + 1, repeat, report.points.size(), report.elapsed_s,
                  report.points_per_sec);
      if (coord.has_value()) {
        const auto& st = coord->stats();
        std::printf(" | +%zu shard(s) dispatched, +%zu cache hit(s)",
                    st.shards_dispatched - dispatched0,
                    st.cache_hits - cache_hits0);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  if (coord.has_value()) coord->shutdown_workers();

  if (json) {
    const std::string body = sweep_report_json(spec, report);
    if (json_path.empty()) {
      std::printf("%s\n", body.c_str());
    } else {
      std::ofstream os(json_path);
      if (!os.is_open()) {
        throw IoError("cannot write sweep report to " + json_path);
      }
      os << body << '\n';
      std::printf("[sweep report written to %s]\n", json_path.c_str());
    }
  } else {
    // Row selection: frontier only (--pareto), N best by CPI (--top), or
    // the whole lattice in row-major order.
    std::vector<std::size_t> rows;
    if (pareto_only) {
      rows = report.frontier;
    } else {
      rows.resize(report.points.size());
      for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
    }
    if (top > 0) {
      std::sort(rows.begin(), rows.end(), [&](std::size_t a, std::size_t b) {
        if (report.points[a].cpi != report.points[b].cpi) {
          return report.points[a].cpi < report.points[b].cpi;
        }
        return a < b;
      });
      if (rows.size() > top) rows.resize(top);
    }
    Table t({"point", "ML CPI", "truth CPI", "area (kc)", "pareto"});
    for (const std::size_t i : rows) {
      const auto& p = report.points[i];
      const std::string label =
          p.point.settings.empty() ? "(base)" : p.point.label();
      t.add_row({label, p.cpi, p.truth_cpi, p.area,
                 std::string(p.on_frontier ? "*" : "")});
    }
    t.set_precision(4);
    t.print(std::cout);
    if (!report.sensitivity.empty()) {
      Table s({"axis", "CPI span", "best value (lowest mean CPI)"});
      for (const auto& ax : report.sensitivity) {
        std::size_t best = 0;
        for (std::size_t j = 1; j < ax.mean_cpi.size(); ++j) {
          if (ax.mean_cpi[j] < ax.mean_cpi[best]) best = j;
        }
        s.add_row({ax.key, ax.span,
                   ax.values.empty() ? std::string() : ax.values[best]});
      }
      s.set_precision(4);
      s.print(std::cout);
    }
    std::printf("%zu point(s) | %zu on the Pareto frontier | %.3f s | "
                "%.2f points/s\n",
                report.points.size(), report.frontier.size(),
                report.elapsed_s, report.points_per_sec);
  }
  finish_obs(obs_flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: mlsim_cli <trace|simulate|sweep|suite|rates|stream|"
                 "serve|coordinator|worker> ...\n");
    return 2;
  }
  // Distinct exit codes per failure class so scripts and the test harness
  // can tell bad invocations (2) from broken files (3), corrupt data (4),
  // and genuine bugs (5). See the header comment.
  try {
    const std::string cmd = argv[1];
    if (cmd == "trace") return cmd_trace(argc, argv);
    if (cmd == "simulate") return cmd_simulate(argc, argv);
    if (cmd == "sweep") return cmd_sweep(argc, argv);
    if (cmd == "suite") return cmd_suite(argc, argv);
    if (cmd == "rates") return cmd_rates(argc, argv);
    if (cmd == "stream") return cmd_stream(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "coordinator") return cmd_coordinator(argc, argv);
    if (cmd == "worker") return cmd_worker(argc, argv);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return 2;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "mlsim_cli: %s\n", e.what());
    return 2;
  } catch (const DrainError& e) {
    // Graceful drain, not a failure: progress is journaled for --resume.
    std::fprintf(stderr, "mlsim_cli: %s\n", e.what());
    return kExitDrained;
  } catch (const IoError& e) {
    std::fprintf(stderr, "mlsim_cli: I/O error: %s\n", e.what());
    return 3;
  } catch (const std::filesystem::filesystem_error& e) {
    std::fprintf(stderr, "mlsim_cli: I/O error: %s\n", e.what());
    return 3;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "mlsim_cli: %s\n", e.what());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mlsim_cli: internal error: %s\n", e.what());
    return 5;
  }
}
