// Multi-GPU scaling walkthrough: partitions a single long benchmark trace
// across a modeled GPU cluster (paper §V / Fig. 17 workflow) and reports
// accuracy + throughput at each scale, including the accuracy-recovery
// configuration knobs.
//
// Usage: multi_gpu_scaling [benchmark] [instructions] [a100|v100]
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <string>

#include "common/table.h"
#include "core/analytic_predictor.h"
#include "core/metrics.h"
#include "core/parallel_sim.h"
#include "core/simulator.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const std::string abbr = argc > 1 ? argv[1] : "mcf";
  const std::size_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2'000'000;
  const std::string gpu_kind = argc > 3 ? argv[3] : "v100";
  const device::GpuSpec gpu =
      gpu_kind == "a100" ? device::GpuSpec::a100() : device::GpuSpec::v100();

  std::printf("scaling %s (%zu instructions) across modeled %s GPUs\n\n",
              abbr.c_str(), n, gpu.name.c_str());
  const auto tr = core::labeled_trace(abbr, n);
  core::AnalyticPredictor pred;

  // Sequential ML reference for the parallel-error column.
  core::ParallelSimOptions seq_o;
  seq_o.num_subtraces = 1;
  seq_o.context_length = core::kDefaultContextLength;
  const double seq_cpi = core::ParallelSimulator(pred, seq_o).run(tr).cpi();

  Table t({"GPUs", "sub-traces", "MIPS (modeled)", "error vs seq ML %",
           "corrected insts"});
  for (const std::size_t gpus : {1, 2, 4, 8, 16, 32, 64, 128, 282}) {
    core::ParallelSimOptions o;
    o.num_gpus = gpus;
    o.num_subtraces = std::min<std::size_t>(32768 * gpus, n / 1024);
    o.num_subtraces = std::max(o.num_subtraces, gpus);
    o.context_length = core::kDefaultContextLength;
    o.warmup = o.context_length;
    o.post_error_correction = true;
    core::CostModel cm;
    cm.gpu = gpu;
    o.costs = cm;
    o.engine = gpu.sparse_speedup > 1.0 ? device::Engine::kTensorRTSparse
                                        : device::Engine::kTensorRTHalf;
    core::ParallelSimulator sim(pred, o);
    const auto res = sim.run(tr);
    t.add_row({static_cast<std::int64_t>(gpus),
               static_cast<std::int64_t>(o.num_subtraces), res.mips(),
               std::abs(core::ParallelSimulator::cpi_error_percent(seq_cpi,
                                                                   res.cpi())),
               static_cast<std::int64_t>(res.corrected_instructions)});
  }
  t.print(std::cout);
  std::printf("\nzero inter-GPU communication during simulation; the only "
              "exchange is the final per-partition Clock gather. Paper peak: "
              "553.68 MIPS on 282 V100s.\n");
  return 0;
}
