// Trace inspector: generate (or load) an encoded trace and print its
// statistics — instruction mix, cache hit levels, branch behaviour,
// ground-truth latency distribution, interval CPI phases. Useful for
// sanity-checking workload profiles and saved trace files.
//
// Usage: trace_inspector [benchmark|path.bin] [instructions]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "common/stats.h"
#include "common/table.h"
#include "core/metrics.h"
#include "core/simulator.h"
#include "trace/annotation.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const std::string what = argc > 1 ? argv[1] : "mcf";
  const std::size_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

  trace::EncodedTrace tr;
  if (std::filesystem::exists(what)) {
    tr = trace::EncodedTrace::load(what);
    std::printf("loaded %zu instructions from %s (benchmark '%s')\n\n",
                tr.size(), what.c_str(), tr.benchmark().c_str());
  } else {
    tr = core::labeled_trace(what, n);
    std::printf("generated %zu instructions of %s\n\n", tr.size(), what.c_str());
  }

  // Instruction mix.
  std::array<std::size_t, trace::kNumOpClasses> mix{};
  std::array<std::size_t, 4> data_levels{};
  std::size_t branches = 0, taken = 0, mispredicted = 0;
  RunningStats fetch_lat, exec_lat, store_lat;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    const auto f = tr.features(i);
    mix[static_cast<std::size_t>(f[trace::Feat::kOpClass])]++;
    data_levels[static_cast<std::size_t>(f[trace::Feat::kDataLevel])]++;
    if (f[trace::Feat::kIsBranch] != 0) {
      ++branches;
      taken += f[trace::Feat::kTaken] != 0;
      mispredicted += f[trace::Feat::kMispredicted] != 0;
    }
    const auto t = tr.targets(i);
    fetch_lat.add(t[0]);
    exec_lat.add(t[1]);
    if (t[2] > 0) store_lat.add(t[2]);
  }

  Table mix_t({"op class", "count", "share %"});
  for (std::size_t c = 0; c < trace::kNumOpClasses; ++c) {
    if (mix[c] == 0) continue;
    mix_t.add_row({std::string(trace::to_string(static_cast<trace::OpClass>(c))),
                   static_cast<std::int64_t>(mix[c]),
                   100.0 * static_cast<double>(mix[c]) /
                       static_cast<double>(tr.size())});
  }
  mix_t.set_precision(1);
  std::printf("instruction mix:\n");
  mix_t.print(std::cout);

  const std::size_t mem_total =
      data_levels[1] + data_levels[2] + data_levels[3];
  if (mem_total > 0) {
    std::printf("data hit levels: L1 %.1f%% | L2 %.1f%% | memory %.1f%%\n",
                100.0 * static_cast<double>(data_levels[1]) / static_cast<double>(mem_total),
                100.0 * static_cast<double>(data_levels[2]) / static_cast<double>(mem_total),
                100.0 * static_cast<double>(data_levels[3]) / static_cast<double>(mem_total));
  }
  if (branches > 0) {
    std::printf("branches: %.1f%% of instructions, %.1f%% taken, %.2f%% "
                "mispredicted\n",
                100.0 * static_cast<double>(branches) / static_cast<double>(tr.size()),
                100.0 * static_cast<double>(taken) / static_cast<double>(branches),
                100.0 * static_cast<double>(mispredicted) / static_cast<double>(branches));
  }
  if (tr.labeled()) {
    std::printf("\nground-truth latencies (cycles):\n");
    std::printf("  fetch: mean %.2f max %.0f | exec: mean %.1f max %.0f | "
                "store (when present): mean %.1f\n",
                fetch_lat.mean(), fetch_lat.max(), exec_lat.mean(),
                exec_lat.max(), store_lat.count() ? store_lat.mean() : 0.0);
    std::printf("  CPI %.3f | memory bandwidth %.2f B/kilocycle\n",
                fetch_lat.mean(), core::memory_bandwidth_from_targets(tr) * 1000);
    const auto series = core::cpi_series_from_targets(
        tr, std::max<std::size_t>(1, tr.size() / 16));
    std::printf("  interval CPI phases:");
    for (double c : series) std::printf(" %.2f", c);
    std::printf("\n");
  }
  return 0;
}
