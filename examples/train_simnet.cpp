// Full SimNet training workflow (paper §II-C protocol):
//   - generate labeled traces for the 4 training benchmarks
//     ({perl, gcc, bwav, namd}),
//   - train the 3C+2F CNN against the cycle-level ground truth,
//   - evaluate end-to-end CPI error on the 17 test benchmarks,
//   - save the bundle for reuse by the benches (--cnn).
//
// Usage: train_simnet [train-instructions-per-benchmark] [window] [epochs]
// Defaults are sized for this machine (single core): 30000 x window 33.
// The paper-scale configuration is window 112 with 64 channels.
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <sstream>

#include "common/artifacts.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/simnet_trainer.h"
#include "core/simulator.h"

using namespace mlsim;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30000;
  const std::size_t window = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 33;
  const std::size_t epochs = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  std::printf("training 3C+2F SimNet: window %zu, %zu instructions/benchmark, "
              "%zu epochs\n", window, n, epochs);

  std::vector<trace::EncodedTrace> traces;
  for (const auto& abbr : trace::train_benchmarks()) {
    std::printf("  labeling %s...\n", abbr.c_str());
    traces.push_back(core::labeled_trace(abbr, n));
  }
  std::vector<const trace::EncodedTrace*> ptrs;
  for (const auto& t : traces) ptrs.push_back(&t);

  core::SimNetTrainConfig cfg;
  cfg.model.window = window;
  cfg.epochs = epochs;
  core::SimNetTrainReport report;
  core::SimNetBundle bundle = core::train_simnet(ptrs, cfg, &report);
  std::printf("final loss %.4f | holdout fetch MAPE %.1f%% | exec MAPE %.1f%% "
              "| %zu samples\n\n", static_cast<double>(report.final_loss),
              report.holdout_mape_fetch, report.holdout_mape_exec,
              report.samples);

  std::ostringstream name;
  name << "simnet_w" << window << "_n" << n << ".bundle";
  bundle.save(artifact_path(name.str()));
  std::printf("saved bundle to %s\n\n", artifact_path(name.str()).c_str());

  // End-to-end evaluation on the unseen benchmarks (closed-loop CPI error).
  core::CnnPredictor pred(std::move(bundle));
  Table t({"benchmark", "predicted CPI", "truth CPI", "CPI error %"});
  RunningStats errs;
  for (const auto& abbr : trace::test_benchmarks()) {
    const auto tr = core::labeled_trace(abbr, 3000);
    const auto eval = core::evaluate_simnet(pred, tr);
    errs.add(eval.cpi_error_percent);
    t.add_row({abbr, eval.predicted_cpi, eval.truth_cpi, eval.cpi_error_percent});
  }
  t.set_precision(2);
  t.print(std::cout);
  std::printf("average |CPI error| across 17 test benchmarks: %.2f%% (paper's "
              "full-scale model: ~2%%)\n", errs.mean());
  return 0;
}
