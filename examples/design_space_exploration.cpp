// Design-space exploration without retraining (paper §VI-F, Table IV).
//
// Sweeps micro-architecture parameters whose effects are carried entirely by
// the input trace (cache sizes, associativity, branch predictor tables): for
// each point we only re-run the cheap trace generation and reuse the same
// predictor, exactly the paper's Fig. 21 workflow generalised to three
// hardware components.
//
// Usage: design_space_exploration [benchmark] [instructions]
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/metrics.h"
#include "core/simulator.h"

using namespace mlsim;

namespace {

double ml_cpi(core::MLSimulator& sim, const trace::EncodedTrace& tr) {
  return sim.simulate(tr).cpi();
}

double truth_cpi(const trace::EncodedTrace& tr) {
  return static_cast<double>(core::total_cycles_from_targets(tr)) /
         static_cast<double>(tr.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string abbr = argc > 1 ? argv[1] : "wrf";
  const std::size_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300000;
  std::printf("design-space exploration on %s, %zu instructions — the "
              "predictor is NEVER retrained, only the trace regenerates.\n\n",
              abbr.c_str(), n);

  core::MLSimulator sim;  // one predictor reused across all points

  // --- L2 cache size (Fig. 21) ----------------------------------------------
  {
    Table t({"L2 size", "ML CPI", "truth CPI"});
    for (const std::size_t kb : {256, 512, 1024, 2048, 4096}) {
      uarch::MachineConfig m;
      m.l2.size_bytes = static_cast<std::uint32_t>(kb * 1024);
      const auto tr = core::labeled_trace(abbr, n, m);
      t.add_row({std::to_string(kb) + "KB", ml_cpi(sim, tr), truth_cpi(tr)});
    }
    std::printf("L2 cache size sweep:\n");
    t.print(std::cout);
  }

  // --- L1D associativity ------------------------------------------------------
  {
    Table t({"L1D assoc", "ML CPI", "truth CPI"});
    for (const std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
      uarch::MachineConfig m;
      m.l1d.assoc = assoc;
      const auto tr = core::labeled_trace(abbr, n, m);
      t.add_row({std::to_string(assoc) + "-way", ml_cpi(sim, tr), truth_cpi(tr)});
    }
    std::printf("L1D associativity sweep:\n");
    t.print(std::cout);
  }

  // --- Branch predictor table size --------------------------------------------
  {
    Table t({"BP tables", "ML CPI", "truth CPI"});
    for (const std::uint32_t bits : {10u, 12u, 14u}) {
      uarch::MachineConfig m;
      m.bp.choice_bits = bits;
      m.bp.direction_bits = bits;
      const auto tr = core::labeled_trace(abbr, n, m);
      t.add_row({std::to_string(1 << bits) + " entries", ml_cpi(sim, tr),
                 truth_cpi(tr)});
    }
    std::printf("bi-mode predictor size sweep:\n");
    t.print(std::cout);
  }

  // --- Branch predictor algorithm (Table IV) -----------------------------------
  {
    Table t({"BP algorithm", "ML CPI", "truth CPI"});
    const std::pair<uarch::BranchPredictorKind, const char*> kinds[] = {
        {uarch::BranchPredictorKind::kBiMode, "bi-mode"},
        {uarch::BranchPredictorKind::kGshare, "gshare"},
        {uarch::BranchPredictorKind::kLocal, "local"},
        {uarch::BranchPredictorKind::kBimodal, "bimodal"},
    };
    for (const auto& [kind, name] : kinds) {
      uarch::MachineConfig m;
      m.bp.kind = kind;
      const auto tr = core::labeled_trace(abbr, n, m);
      t.add_row({std::string(name), ml_cpi(sim, tr), truth_cpi(tr)});
    }
    std::printf("branch predictor algorithm sweep:\n");
    t.print(std::cout);
  }

  // --- Replacement policy (Table IV) -------------------------------------------
  {
    Table t({"L1D/L2 replacement", "ML CPI", "truth CPI"});
    const std::pair<uarch::ReplacementPolicy, const char*> policies[] = {
        {uarch::ReplacementPolicy::kLru, "LRU"},
        {uarch::ReplacementPolicy::kFifo, "FIFO"},
        {uarch::ReplacementPolicy::kRandom, "random"},
    };
    for (const auto& [policy, name] : policies) {
      uarch::MachineConfig m;
      m.l1d.replacement = policy;
      m.l2.replacement = policy;
      const auto tr = core::labeled_trace(abbr, n, m);
      t.add_row({std::string(name), ml_cpi(sim, tr), truth_cpi(tr)});
    }
    std::printf("replacement policy sweep:\n");
    t.print(std::cout);
  }

  // --- Next-line prefetching ----------------------------------------------------
  {
    Table t({"prefetcher", "ML CPI", "truth CPI"});
    for (const bool pf : {false, true}) {
      uarch::MachineConfig m;
      m.l1d.next_line_prefetch = pf;
      m.l2.next_line_prefetch = pf;
      const auto tr = core::labeled_trace(abbr, n, m);
      t.add_row({std::string(pf ? "tagged next-line" : "none"), ml_cpi(sim, tr),
                 truth_cpi(tr)});
    }
    std::printf("prefetcher sweep:\n");
    t.print(std::cout);
  }

  std::printf("each point cost one functional re-trace (paper: 1290 MIPS "
              "class) — no retraining, no cycle-level re-simulation needed "
              "for the ML columns.\n");
  return 0;
}
